"""Expression families for the §8 succinctness results.

* :func:`phi_k` — the Theorem 35 family: a CoreXPath(∩) node expression of
  size O(k²) expressing the word property ``φ_k`` ("two pp-anchored
  positions whose k even-offset successors agree also agree at offset 2k"),
  which every CoreXPath(*, ≈) expression — indeed every 2ATA-convertible
  one — needs ~2^{2^k} automaton states for [Etessami–Vardi–Wilke 2002].
* :func:`phi_k_property` — a direct decision procedure for the property on
  label words, used to validate :func:`phi_k` and to drive the minimal-DFA
  measurements in :mod:`repro.succinctness.wordauto`.
* :func:`tower` — the tower function for the non-elementary statements.
"""

from __future__ import annotations

from typing import Sequence

from ..xpath.ast import (
    Filter,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathExpr,
    Self,
    SomePath,
    Union,
)
from ..xpath.builders import down, down_star, implies, repeat, up, up_star

__all__ = ["phi_k", "phi_k_property", "tower", "LABEL_P", "LABEL_Q"]

LABEL_P = "p"
LABEL_Q = "q"

_P = Label(LABEL_P)
_Q = Label(LABEL_Q)

#: ``≡``: two chain nodes carry the same label (on {p,q}-labeled words,
#: where any node reaches any other via ↑*/↓*).
_SAME = Union(
    Filter(Self(), _P) / (up_star / down_star[_P]),
    Filter(Self(), _Q) / (up_star / down_star[_Q]),
)
#: ``≢``: different labels.
_DIFF = Union(
    Filter(Self(), _P) / (up_star / down_star[_Q]),
    Filter(Self(), _Q) / (up_star / down_star[_P]),
)


def _alpha(ell: int, comparison: PathExpr) -> PathExpr:
    """``(↓)^{2ℓ} / comparison / (↑)^{2ℓ}``: relates u_i to u_j iff the
    nodes 2ℓ below them compare as requested."""
    return repeat(down, 2 * ell) / comparison / repeat(up, 2 * ell)


def phi_k(k: int) -> NodeExpr:
    """The Theorem 35 expression: on unary {p,q}-trees (words), ``φ_k``
    holds at *every* node iff the word property holds.  Size is O(k²)."""
    if k < 1:
        raise ValueError("k must be >= 1")
    meet = _alpha(0, _SAME)
    for ell in range(1, k):
        meet = Intersect(meet, _alpha(ell, _SAME))
    meet = Intersect(meet, _alpha(k, _DIFF))
    anchor = _P & SomePath(down[_P])  # p ∧ ⟨↓[p]⟩ — a "pp" position
    return implies(anchor, Not(SomePath(Filter(meet, anchor))))


def phi_k_property(word: Sequence[str], k: int) -> bool:
    """The property ``φ_k`` on a word ``u_1 … u_n`` (1-based in the paper):

    for all ``i, j ≤ n − 2k``: if ``u_i u_{i+1} = pp = u_j u_{j+1}`` and
    ``u_{i+2ℓ} = u_{j+2ℓ}`` for all ``ℓ < k``, then ``u_{i+2k} = u_{j+2k}``.
    """
    n = len(word)
    anchors = [
        i for i in range(n - 2 * k)
        if word[i] == LABEL_P and i + 1 < n and word[i + 1] == LABEL_P
    ]
    for i in anchors:
        for j in anchors:
            if all(word[i + 2 * ell] == word[j + 2 * ell] for ell in range(k)):
                if word[i + 2 * k] != word[j + 2 * k]:
                    return False
    return True


def tower(height: int, base: int = 2) -> int:
    """``tower(0) = 1``, ``tower(h+1) = base^tower(h)`` — the growth rate of
    the non-elementary bounds (Theorems 30, 31, 36)."""
    value = 1
    for _ in range(height):
        value = base ** value
    return value
