"""Measured translation pipelines for the §8 succinctness comparisons.

Each function returns plain size dictionaries so benchmarks and
EXPERIMENTS.md can report the growth curves:

* :func:`measure_path_cap_translation` / :func:`measure_cap_translation` —
  CoreXPath(*, ∩) → EPA (Lemma 16/17) → CoreXPath(*, ≈) (Lemma 33): the
  Theorem 34 pipeline.  The final expression-level step is exponential in
  the automaton size, so it can be switched off for larger instances.
* :func:`cap_chain` — a *bounded-intersection-depth* family (depth 1, size
  linear in the parameter): Lemma 17 predicts polynomial EPA growth.
* :func:`cap_tower` — *nested* intersections (depth grows linearly):
  Lemma 16's exponential regime.
"""

from __future__ import annotations

from ..automata import FreshLabels, node_to_let_nf, path_to_epa
from ..automata.toexpr import epa_to_path, letnf_to_expr
from ..xpath.ast import Intersect, NodeExpr, PathExpr, Seq
from ..xpath.builders import down, down_star
from ..xpath.measures import intersection_depth, size

__all__ = [
    "measure_cap_translation",
    "measure_path_cap_translation",
    "cap_chain",
    "cap_tower",
]

#: The intersection block both families are built from.
_BLOCK: PathExpr = Intersect(down_star, Seq(down, down_star))


def cap_chain(length: int) -> PathExpr:
    """``(↓* ∩ ↓/↓*) / (↓* ∩ ↓/↓*) / …`` — ``length`` composed intersection
    blocks; the intersection depth stays 1 while the size grows linearly."""
    if length < 1:
        raise ValueError("length must be >= 1")
    result: PathExpr = _BLOCK
    for _ in range(length - 1):
        result = Seq(result, _BLOCK)
    return result


def cap_tower(depth: int) -> PathExpr:
    """Left-nested intersections: ``(…((b ∩ b) ∩ b)…)`` with each level
    intersecting against a composed copy, so the intersection depth grows
    linearly with ``depth`` — the Lemma 16 exponential regime."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    level: PathExpr = _BLOCK
    for _ in range(depth - 1):
        level = Intersect(Seq(level, down_star), Seq(down_star, level))
    return level


def measure_path_cap_translation(path: PathExpr,
                                 include_expression: bool = True) -> dict[str, int]:
    """Sizes along the CoreXPath(*, ∩) → EPA → CoreXPath(*, ≈) pipeline.

    ``include_expression=False`` skips the Lemma 33 state elimination, whose
    output is exponential in the EPA and quickly becomes enormous."""
    epa = path_to_epa(path, FreshLabels())
    result = {
        "input_size": size(path),
        "intersection_depth": intersection_depth(path),
        "epa_states": epa.num_states,
        "epa_size": epa.size(),
    }
    if include_expression:
        result["output_size"] = size(epa_to_path(epa))
    return result


def measure_cap_translation(phi: NodeExpr,
                            include_expression: bool = True) -> dict[str, int]:
    """Same pipeline for node expressions (Theorem 34)."""
    letnf = node_to_let_nf(phi, FreshLabels())
    result = {
        "input_size": size(phi),
        "intersection_depth": intersection_depth(phi),
        "letnf_size": letnf.size(),
    }
    if include_expression:
        result["output_size"] = size(letnf_to_expr(letnf))
    return result
