"""Word automata witnessing the Theorem 35 lower bound.

The proof of Theorem 35 argues via [Etessami–Vardi–Wilke 2002] that any
(one-way nondeterministic) word automaton for the property ``φ_k`` needs at
least ``2^{2^k}`` states.  This module makes the lower-bound side
*measurable*: :func:`violation_nfa` constructs an NFA recognizing the words
that **violate** ``φ_k`` — it guesses the anchor ``i``, stores the ``k+1``
even-offset symbols of the window ``u_i … u_{i+2k}`` (the ``2^{k+1}``-way
state component that drives the blow-up), then guesses ``j > i`` (possibly
inside the first window) and checks agreement at even offsets below ``2k``
and disagreement at ``2k``.  :func:`minimal_dfa_size_for_phi_k` determinizes
and minimizes its complement; the doubly-exponential growth in ``k`` is the
measured shape.
"""

from __future__ import annotations

from ..regexes import DFA, NFA, determinize
from .families import LABEL_P, LABEL_Q, phi_k_property

__all__ = ["violation_nfa", "minimal_dfa_size_for_phi_k"]

_ALPHABET = (LABEL_P, LABEL_Q)
_BAD = ("bad",)
_SCAN = ("scan",)


def _advance_capture(t: int, evens: tuple, symbol: str, k: int):
    """One step of the i-window capture; None if this branch dies.
    Returns ``(new_t_or_done, new_evens)`` with ``new_t_or_done = None``
    when the window is complete."""
    if t <= 1 and symbol != LABEL_P:
        return None  # u_i u_{i+1} must be pp
    new_evens = evens + (symbol,) if t % 2 == 0 else evens
    window = 2 * k + 1
    if t + 1 == window:
        return (None, new_evens)
    return (t + 1, new_evens)


def _advance_match(t: int, evens: tuple, symbol: str, k: int):
    """One step of the j-window match against stored ``evens``.  Returns
    ``"bad"`` on an established violation, ``None`` if the branch dies, or
    the next offset."""
    if t <= 1 and symbol != LABEL_P:
        return None
    if t % 2 == 0:
        offset = t // 2
        if offset < k:
            if symbol != evens[offset]:
                return None
        else:  # offset == k: must disagree
            return _BAD if symbol != evens[k] else None
    return t + 1


def violation_nfa(k: int) -> NFA:
    """An NFA over {p, q} accepting exactly the words violating ``φ_k``.

    State forms: ``("scan",)`` before the anchor; ``("cap", t, evens)``
    inside the i-window; ``("both", ti, tj, evens)`` inside both windows
    (``j`` started before the i-window finished — the comparisons only ever
    need evens that are already stored, since ``tj < ti``);
    ``("wait", evens)`` between the windows; ``("match", t, evens)`` inside
    the j-window; ``("bad",)`` accepting sink.
    """
    if k < 1:
        raise ValueError("k must be >= 1")

    def successors(state: tuple, symbol: str) -> list[tuple]:
        kind = state[0]
        if kind == "scan":
            result = [_SCAN]
            step = _advance_capture(0, (), symbol, k)
            if step is not None:
                t, evens = step
                result.append(("cap", t, evens) if t is not None
                              else ("wait", evens))
            return result
        if kind == "cap":
            _, t, evens = state
            step = _advance_capture(t, evens, symbol, k)
            if step is None:
                return []
            new_t, new_evens = step
            i_state = ("cap", new_t, new_evens) if new_t is not None \
                else ("wait", new_evens)
            result = [i_state]
            # The same symbol may start the j-window (offset 0 of j): it
            # must be p and equal evens[0] (= p), which _advance_match checks.
            j_step = _advance_match(0, new_evens, symbol, k)
            if j_step == _BAD:
                result.append(_BAD)
            elif j_step is not None:
                if new_t is not None:
                    result.append(("both", new_t, j_step, new_evens))
                else:
                    result.append(("match", j_step, new_evens))
            return result
        if kind == "both":
            _, ti, tj, evens = state
            step = _advance_capture(ti, evens, symbol, k)
            if step is None:
                return []
            new_ti, new_evens = step
            j_step = _advance_match(tj, new_evens, symbol, k)
            if j_step == _BAD:
                return [_BAD]
            if j_step is None:
                return []
            if new_ti is not None:
                return [("both", new_ti, j_step, new_evens)]
            return [("match", j_step, new_evens)]
        if kind == "wait":
            _, evens = state
            result = [state]
            j_step = _advance_match(0, evens, symbol, k)
            if j_step == _BAD:
                result.append(_BAD)
            elif j_step is not None:
                result.append(("match", j_step, evens))
            return result
        if kind == "match":
            _, t, evens = state
            j_step = _advance_match(t, evens, symbol, k)
            if j_step == _BAD:
                return [_BAD]
            if j_step is None:
                return []
            return [("match", j_step, evens)]
        if kind == "bad":
            return [state]
        raise AssertionError(state)

    # Worklist construction from the initial state.
    index: dict[tuple, int] = {_SCAN: 0}
    order: list[tuple] = [_SCAN]
    transitions: dict[tuple[int, str], set[int]] = {}
    position = 0
    while position < len(order):
        state = order[position]
        for symbol in _ALPHABET:
            for target in successors(state, symbol):
                if target not in index:
                    index[target] = len(order)
                    order.append(target)
                transitions.setdefault((index[state], symbol), set()).add(
                    index[target]
                )
        position += 1

    accepting = frozenset((index[_BAD],)) if _BAD in index else frozenset()
    return NFA(
        len(order),
        frozenset((0,)),
        accepting,
        {key: frozenset(val) for key, val in transitions.items()},
    )


def minimal_dfa_size_for_phi_k(k: int) -> tuple[int, int, DFA]:
    """(NFA size, minimal DFA size for the property language, the DFA).

    The DFA recognizes exactly the words *satisfying* ``φ_k`` — the
    complement of the violation NFA's language.
    """
    nfa = violation_nfa(k)
    dfa = determinize(nfa, frozenset(_ALPHABET)).complement().minimize()
    return nfa.num_states, dfa.num_states, dfa


def self_check(k: int, max_length: int = 10) -> None:
    """Exhaustively compare the automaton against the direct property."""
    import itertools

    _, _, dfa = minimal_dfa_size_for_phi_k(k)
    for length in range(max_length + 1):
        for word in itertools.product(_ALPHABET, repeat=length):
            if dfa.accepts(word) != phi_k_property(word, k):
                raise AssertionError(f"mismatch at {word!r}")
