"""Denotational semantics of CoreXPath and all extensions (Table II, §7)."""

from .evaluator import (
    Evaluator,
    Relation,
    evaluate_path,
    evaluate_nodes,
    holds_somewhere,
    holds_at,
    path_contained_on,
    relation_pairs,
)

__all__ = [
    "Evaluator",
    "Relation",
    "evaluate_path",
    "evaluate_nodes",
    "holds_somewhere",
    "holds_at",
    "path_contained_on",
    "relation_pairs",
]
