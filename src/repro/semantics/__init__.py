"""Denotational semantics of CoreXPath and all extensions (Table II, §7).

Layered since the engine-kernel refactor:

* :mod:`.relalg` — pure relation algebra shared by every backend.
* :mod:`.plan` — compile-once/run-many plans (:func:`compile_plan`,
  :class:`Plan`, :class:`TreeContext`), globally cached and CSE'd.
* :mod:`.evaluator` — the stable public facade (:class:`Evaluator` and the
  one-shot helpers), now plan-backed.
* :mod:`.reference` — the original recursive evaluator, kept as the oracle
  for differential testing.
"""

from .evaluator import (
    Evaluator,
    Relation,
    UnboundVariableError,
    evaluate_path,
    evaluate_nodes,
    holds_somewhere,
    holds_at,
    path_contained_on,
    relation_pairs,
)
from .plan import Plan, TreeContext, compile_plan, plan_cache_info
from .reference import ReferenceEvaluator

__all__ = [
    "Evaluator",
    "Plan",
    "ReferenceEvaluator",
    "Relation",
    "TreeContext",
    "UnboundVariableError",
    "compile_plan",
    "evaluate_path",
    "evaluate_nodes",
    "holds_somewhere",
    "holds_at",
    "path_contained_on",
    "plan_cache_info",
    "relation_pairs",
]
