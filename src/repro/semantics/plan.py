"""Compile-once / run-many evaluation plans.

The bounded engines evaluate the *same* one or two expressions over
thousands of enumerated trees.  The legacy evaluator re-walked the AST and
re-keyed its memo tables for every tree; this module splits that work:

* :func:`compile_plan` — done **once** per (set of) expressions.  The
  expressions are normalized and interned (:mod:`repro.xpath.intern`), then
  lowered to a post-order array of ops over *slots*.  Slots are allocated by
  intern key, so a subexpression shared between ``α`` and ``β`` — or
  appearing twice inside one expression — occupies a single slot and is
  evaluated once per tree (common-subexpression elimination for free).
  Plans are cached globally by the intern keys of their normalized roots.
* :class:`Plan.run` — done once **per tree**.  For variable-free
  expressions (every Table I workload) this is a straight-line sweep over
  the op array filling a positional register file: no memo-key hashing, no
  AST dispatch, no free-variable bookkeeping.  Expressions with ``for``
  loops or ``. is $x`` tests fall back to recursive slot evaluation with a
  (slot, restricted-assignment) memo — the same semantics as the reference
  evaluator.
* :class:`TreeContext` — per-tree axis relations and a label→nodes index,
  shared by every plan executed against that tree.

Observability: ``plan.cache.hit`` / ``plan.cache.miss`` count global plan
cache behaviour, ``plan.cse.shared`` counts slots reused across roots at
compile time.
"""

from __future__ import annotations

import threading
from typing import Mapping, Union as TypingUnion

from .. import obs
from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Expr,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from ..xpath import passes
from ..xpath.intern import free_variables_cached, intern_key, normalize
from .relalg import (
    EMPTY_TARGETS,
    Relation,
    compose,
    difference,
    intersect,
    reflexive_transitive_closure,
    union,
)

__all__ = [
    "Plan",
    "TreeContext",
    "UnboundVariableError",
    "compile_plan",
    "plan_cache_info",
    "clear_plan_cache",
]

#: A slot's value during execution: a relation (path) or a node set (node).
SlotValue = TypingUnion[Relation, frozenset[int]]


class UnboundVariableError(LookupError):
    """A ``. is $x`` test was evaluated with ``$x`` unbound."""


class TreeContext:
    """Per-tree evaluation state: axis relations and a label index.

    Build one per tree and reuse it across every plan executed on that tree
    — the axis relations and label index are computed at most once each.
    """

    __slots__ = (
        "tree",
        "shape",
        "all_nodes",
        "_multi",
        "_axis_cache",
        "_axis_closure_cache",
        "_label_cache",
        "_self_relation",
    )

    def __init__(self, tree: XMLTree | MultiLabelTree):
        self.tree = tree
        self._multi = isinstance(tree, MultiLabelTree)
        self.shape = tree.skeleton if self._multi else tree
        self.all_nodes: frozenset[int] = frozenset(self.shape.nodes)
        self._axis_cache: dict[Axis, Relation] = {}
        self._axis_closure_cache: dict[Axis, Relation] = {}
        self._label_cache: dict[str, frozenset[int]] = {}
        self._self_relation: Relation | None = None

    # ------------------------------------------------------------- relations

    def axis_relation(self, axis: Axis) -> Relation:
        relation = self._axis_cache.get(axis)
        if relation is None:
            relation = self._build_axis(axis)
            self._axis_cache[axis] = relation
        return relation

    def axis_closure_relation(self, axis: Axis) -> Relation:
        relation = self._axis_closure_cache.get(axis)
        if relation is None:
            relation = self._build_axis_closure(axis)
            self._axis_closure_cache[axis] = relation
        return relation

    def self_relation(self) -> Relation:
        relation = self._self_relation
        if relation is None:
            relation = {node: frozenset((node,)) for node in self.all_nodes}
            self._self_relation = relation
        return relation

    def label_nodes(self, name: str) -> frozenset[int]:
        """All nodes carrying ``name``, via a lazily-built label index."""
        nodes = self._label_cache.get(name)
        if nodes is None:
            if self._multi:
                has_label = self.tree.has_label  # type: ignore[union-attr]
                nodes = frozenset(
                    node for node in self.all_nodes if has_label(node, name)
                )
                self._label_cache[name] = nodes
            else:
                # Build the full index in one pass: subsequent labels are free.
                index: dict[str, set[int]] = {}
                label_of = self.tree.label  # type: ignore[union-attr]
                for node in self.all_nodes:
                    index.setdefault(label_of(node), set()).add(node)
                for label, members in index.items():
                    self._label_cache.setdefault(label, frozenset(members))
                nodes = self._label_cache.setdefault(name, EMPTY_TARGETS)
        return nodes

    def node_has_label(self, node: int, name: str) -> bool:
        if self._multi:
            return self.tree.has_label(node, name)  # type: ignore[union-attr]
        return self.tree.label(node) == name  # type: ignore[union-attr]

    def _build_axis(self, axis: Axis) -> Relation:
        shape = self.shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                kids = shape.children(node)
                if kids:
                    relation[node] = frozenset(kids)
        elif axis is Axis.UP:
            for node in shape.nodes:
                parent = shape.parent(node)
                if parent is not None:
                    relation[node] = frozenset((parent,))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                sibling = shape.next_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                sibling = shape.prev_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        return relation

    def _build_axis_closure(self, axis: Axis) -> Relation:
        shape = self.shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                relation[node] = frozenset(shape.descendants_or_self(node))
        elif axis is Axis.UP:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.ancestors(node)))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                relation[node] = frozenset(
                    (node, *shape.following_siblings(node))
                )
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                relation[node] = frozenset(
                    (node, *shape.preceding_siblings(node))
                )
        return relation


# Opcodes.  Each op is a tuple (opcode, *operands); operand slots are
# integers referring to earlier positions in the op array (post-order).
OP_AXIS = "axis"          # (OP_AXIS, Axis)
OP_CLOSURE = "closure"    # (OP_CLOSURE, Axis)
OP_SELF = "self"          # (OP_SELF,)
OP_SEQ = "seq"            # (OP_SEQ, left_slot, right_slot)
OP_UNION = "union"        # ...
OP_INTERSECT = "intersect"
OP_COMPLEMENT = "complement"
OP_FILTER = "filter"      # (OP_FILTER, path_slot, predicate_slot)
OP_STAR = "star"          # (OP_STAR, path_slot)
OP_FOR = "for"            # (OP_FOR, var, source_slot, body_slot)
OP_LABEL = "label"        # (OP_LABEL, name)
OP_SOME = "some"          # (OP_SOME, path_slot)
OP_TOP = "top"            # (OP_TOP,)
OP_NOT = "not"            # (OP_NOT, child_slot)
OP_AND = "and"            # (OP_AND, left_slot, right_slot)
OP_PATHEQ = "patheq"      # (OP_PATHEQ, left_slot, right_slot)
OP_VAR = "var"            # (OP_VAR, name)


class Plan:
    """A compiled evaluation plan over one or more root expressions.

    ``run(tree_or_context, assignment)`` returns one result per root, in
    compile order: a :data:`Relation` for path roots, a ``frozenset[int]``
    for node roots.
    """

    __slots__ = ("roots", "ops", "exprs", "root_slots", "has_binders")

    def __init__(self, roots: tuple[Expr, ...], ops: list[tuple],
                 exprs: list[Expr], root_slots: tuple[int, ...],
                 has_binders: bool):
        #: normalized, interned root expressions (compile order).
        self.roots = roots
        #: post-order op array; ops[i] computes the value of slot i.
        self.ops = ops
        #: the interned subexpression each slot stands for.
        self.exprs = exprs
        #: slot index of each root's value.
        self.root_slots = root_slots
        #: True iff any op binds or reads a node variable.
        self.has_binders = has_binders

    def __len__(self) -> int:
        return len(self.ops)

    def run(self, tree: XMLTree | MultiLabelTree | TreeContext,
            assignment: Mapping[str, int] | None = None,
            ) -> tuple[SlotValue, ...]:
        context = tree if isinstance(tree, TreeContext) else TreeContext(tree)
        if self.has_binders or assignment:
            executor = _RecursiveExecutor(self, context, dict(assignment or {}))
            return tuple(executor.eval(slot, executor.assignment)
                         for slot in self.root_slots)
        registers = self._run_straight_line(context)
        return tuple(registers[slot] for slot in self.root_slots)

    def run_single(self, tree: XMLTree | MultiLabelTree | TreeContext,
                   assignment: Mapping[str, int] | None = None) -> SlotValue:
        """``run`` for single-root plans."""
        return self.run(tree, assignment)[0]

    # --------------------------------------------------- straight-line mode

    def _run_straight_line(self, ctx: TreeContext) -> list[SlotValue]:
        """Fill the register file in one post-order sweep.

        Only sound when no op binds or reads a variable: every slot's value
        is then a function of the tree alone, so each is computed exactly
        once regardless of how many parents share it.
        """
        registers: list[SlotValue] = []
        append = registers.append
        all_nodes = ctx.all_nodes
        for op in self.ops:
            tag = op[0]
            if tag == OP_AXIS:
                append(ctx.axis_relation(op[1]))
            elif tag == OP_CLOSURE:
                append(ctx.axis_closure_relation(op[1]))
            elif tag == OP_SELF:
                append(ctx.self_relation())
            elif tag == OP_SEQ:
                append(compose(registers[op[1]], registers[op[2]]))
            elif tag == OP_UNION:
                append(union(registers[op[1]], registers[op[2]]))
            elif tag == OP_INTERSECT:
                append(intersect(registers[op[1]], registers[op[2]]))
            elif tag == OP_COMPLEMENT:
                append(difference(registers[op[1]], registers[op[2]]))
            elif tag == OP_FILTER:
                allowed = registers[op[2]]
                append({
                    source: kept
                    for source, targets in registers[op[1]].items()
                    if (kept := targets & allowed)
                })
            elif tag == OP_STAR:
                append(reflexive_transitive_closure(registers[op[1]],
                                                    all_nodes))
            elif tag == OP_LABEL:
                append(ctx.label_nodes(op[1]))
            elif tag == OP_SOME:
                append(frozenset(
                    node for node, targets in registers[op[1]].items()
                    if targets
                ))
            elif tag == OP_TOP:
                append(all_nodes)
            elif tag == OP_NOT:
                append(all_nodes - registers[op[1]])
            elif tag == OP_AND:
                append(registers[op[1]] & registers[op[2]])
            elif tag == OP_PATHEQ:
                left_rel = registers[op[1]]
                right_rel = registers[op[2]]
                append(frozenset(
                    node for node, targets in left_rel.items()
                    if targets & right_rel.get(node, EMPTY_TARGETS)
                ))
            else:  # pragma: no cover - compile() never emits others here
                raise TypeError(f"op {tag!r} requires the recursive executor")
        return registers


class _RecursiveExecutor:
    """Slot-at-a-time evaluation for plans with variables.

    Memoizes per (slot, assignment restricted to the slot's free variables)
    — the plan-level analogue of the reference evaluator's memo tables, but
    keyed by dense slot indices instead of object identities.
    """

    __slots__ = ("plan", "ctx", "assignment", "_memo", "_free")

    def __init__(self, plan: Plan, ctx: TreeContext,
                 assignment: dict[str, int]):
        self.plan = plan
        self.ctx = ctx
        self.assignment = assignment
        self._memo: dict[tuple, SlotValue] = {}
        self._free: list[frozenset[str] | None] = [None] * len(plan.ops)

    def _free_vars(self, slot: int) -> frozenset[str]:
        fvs = self._free[slot]
        if fvs is None:
            fvs = free_variables_cached(self.plan.exprs[slot])
            self._free[slot] = fvs
        return fvs

    def eval(self, slot: int, assignment: dict[str, int]) -> SlotValue:
        fvs = self._free_vars(slot)
        relevant = tuple(sorted(
            (v, assignment[v]) for v in fvs if v in assignment
        ))
        memo_key = (slot, relevant)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._eval_raw(slot, assignment)
        self._memo[memo_key] = result
        return result

    def _eval_raw(self, slot: int, env: dict[str, int]) -> SlotValue:
        op = self.plan.ops[slot]
        ctx = self.ctx
        tag = op[0]
        if tag == OP_AXIS:
            return ctx.axis_relation(op[1])
        if tag == OP_CLOSURE:
            return ctx.axis_closure_relation(op[1])
        if tag == OP_SELF:
            return ctx.self_relation()
        if tag == OP_SEQ:
            return compose(self.eval(op[1], env), self.eval(op[2], env))
        if tag == OP_UNION:
            return union(self.eval(op[1], env), self.eval(op[2], env))
        if tag == OP_INTERSECT:
            return intersect(self.eval(op[1], env), self.eval(op[2], env))
        if tag == OP_COMPLEMENT:
            return difference(self.eval(op[1], env), self.eval(op[2], env))
        if tag == OP_FILTER:
            allowed = self.eval(op[2], env)
            return {
                source: kept
                for source, targets in self.eval(op[1], env).items()
                if (kept := targets & allowed)
            }
        if tag == OP_STAR:
            return reflexive_transitive_closure(self.eval(op[1], env),
                                                ctx.all_nodes)
        if tag == OP_FOR:
            return self._for_loop(op[1], op[2], op[3], env)
        if tag == OP_LABEL:
            return ctx.label_nodes(op[1])
        if tag == OP_SOME:
            return frozenset(
                node for node, targets in self.eval(op[1], env).items()
                if targets
            )
        if tag == OP_TOP:
            return ctx.all_nodes
        if tag == OP_NOT:
            return ctx.all_nodes - self.eval(op[1], env)
        if tag == OP_AND:
            return self.eval(op[1], env) & self.eval(op[2], env)
        if tag == OP_PATHEQ:
            left_rel = self.eval(op[1], env)
            right_rel = self.eval(op[2], env)
            return frozenset(
                node for node, targets in left_rel.items()
                if targets & right_rel.get(node, EMPTY_TARGETS)
            )
        if tag == OP_VAR:
            name = op[1]
            if name not in env:
                raise UnboundVariableError(f"variable ${name} is unbound")
            return frozenset((env[name],))
        raise TypeError(f"unknown op {tag!r}")  # pragma: no cover

    def _for_loop(self, var: str, source_slot: int, body_slot: int,
                  env: dict[str, int]) -> Relation:
        source_relation = self.eval(source_slot, env)
        result: dict[int, set[int]] = {}
        bound_values = {
            k for targets in source_relation.values() for k in targets
        }
        body_relations = {}
        for value in bound_values:
            inner = dict(env)
            inner[var] = value
            body_relations[value] = self.eval(body_slot, inner)
        for node, witnesses in source_relation.items():
            targets: set[int] = set()
            for value in witnesses:
                targets |= body_relations[value].get(node, EMPTY_TARGETS)
            if targets:
                result[node] = targets
        return {node: frozenset(targets) for node, targets in result.items()}


# ------------------------------------------------------------- compilation


class _Compiler:
    """Lowers interned expressions to a shared post-order op array."""

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self.exprs: list[Expr] = []
        self.slot_of: dict[int, int] = {}  # intern key -> slot
        self.has_binders = False
        self.shared = 0  # CSE: slot lookups that hit an existing slot

    def slot(self, expr: Expr) -> int:
        key = intern_key(expr)
        existing = self.slot_of.get(key)
        if existing is not None:
            self.shared += 1
            return existing
        op = self._lower(expr)
        index = len(self.ops)
        self.ops.append(op)
        self.exprs.append(expr)
        self.slot_of[key] = index
        return index

    def _lower(self, expr: Expr) -> tuple:
        match expr:
            case AxisStep(axis=a):
                return (OP_AXIS, a)
            case AxisClosure(axis=a):
                return (OP_CLOSURE, a)
            case Self():
                return (OP_SELF,)
            case Seq(left=a, right=b):
                return (OP_SEQ, self.slot(a), self.slot(b))
            case Union(left=a, right=b):
                return (OP_UNION, self.slot(a), self.slot(b))
            case Intersect(left=a, right=b):
                return (OP_INTERSECT, self.slot(a), self.slot(b))
            case Complement(left=a, right=b):
                return (OP_COMPLEMENT, self.slot(a), self.slot(b))
            case Filter(path=a, predicate=p):
                return (OP_FILTER, self.slot(a), self.slot(p))
            case Star(path=a):
                return (OP_STAR, self.slot(a))
            case ForLoop(var=v, source=a, body=b):
                self.has_binders = True
                return (OP_FOR, v, self.slot(a), self.slot(b))
            case Label(name=name):
                return (OP_LABEL, name)
            case SomePath(path=a):
                return (OP_SOME, self.slot(a))
            case Top():
                return (OP_TOP,)
            case Not(child=c):
                return (OP_NOT, self.slot(c))
            case And(left=a, right=b):
                return (OP_AND, self.slot(a), self.slot(b))
            case PathEquality(left=a, right=b):
                return (OP_PATHEQ, self.slot(a), self.slot(b))
            case VarIs(var=v):
                self.has_binders = True
                return (OP_VAR, v)
        raise TypeError(f"unknown expression {expr!r}")


_cache_lock = threading.RLock()
#: (pipeline level, *intern keys of the canonical roots) -> compiled plan.
_PLAN_CACHE: dict[tuple, Plan] = {}
_cache_hits = 0
_cache_misses = 0


def compile_plan(*exprs: PathExpr | NodeExpr) -> Plan:
    """Compile one plan evaluating every given expression on a shared
    register file.  Results of :meth:`Plan.run` align with the argument
    order.

    Roots are canonicalized by the rewrite pipeline
    (:mod:`repro.xpath.passes`) at the session level before lowering —
    normalization is guaranteed as a floor even at level ``none`` (the
    CSE slot allocation wants the normalizer's sharing), so the historical
    ``normalize``-only behaviour is the ``--passes none`` baseline.  Plans
    are cached globally by the pipeline level plus the intern keys of the
    canonical roots, so repeated compilation of the same queries — or of
    syntactic variants with the same canonical form — is a dict lookup.
    """
    global _cache_hits, _cache_misses
    if not exprs:
        raise ValueError("compile_plan needs at least one expression")
    level = passes.default_pipeline()
    with _cache_lock:
        roots = tuple(passes.canonical(normalize(e), level=level)
                      for e in exprs)
        cache_key = (level, *(intern_key(root) for root in roots))
        plan = _PLAN_CACHE.get(cache_key)
        if plan is not None:
            _cache_hits += 1
            obs.count("plan.cache.hit")
            return plan
        _cache_misses += 1
        obs.count("plan.cache.miss")
        compiler = _Compiler()
        root_slots = tuple(compiler.slot(root) for root in roots)
        if compiler.shared:
            obs.count("plan.cse.shared", compiler.shared)
        plan = Plan(roots, compiler.ops, compiler.exprs, root_slots,
                    compiler.has_binders)
        _PLAN_CACHE[cache_key] = plan
        return plan


def plan_cache_info() -> dict[str, int]:
    """Global plan-cache statistics (process lifetime)."""
    with _cache_lock:
        return {
            "plans": len(_PLAN_CACHE),
            "hits": _cache_hits,
            "misses": _cache_misses,
        }


def clear_plan_cache() -> None:
    """Drop all cached plans (the intern tables are left untouched)."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _PLAN_CACHE.clear()
        _cache_hits = 0
        _cache_misses = 0
