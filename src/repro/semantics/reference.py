"""The pre-plan recursive evaluator, kept verbatim as a semantics oracle.

This is the direct transcription of Table II (extended per §2.2 and §7) that
the library shipped before the compile-once/run-many plan kernel
(:mod:`repro.semantics.plan`) replaced it on the hot paths.  It stays for
two reasons:

* it is the *specification*: the property-based differential tests assert
  ``Plan.run ≡ ReferenceEvaluator`` on random trees and expressions, so any
  optimization bug in the plan kernel shows up as a divergence from this
  code; and
* it has no caches shared across trees, which makes it the easiest backend
  to reason about when debugging.

Do not add optimizations here — that is the point.
"""

from __future__ import annotations

from typing import Mapping

from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from ..xpath.measures import free_variables
from .plan import UnboundVariableError
from .relalg import (
    EMPTY_TARGETS,
    Relation,
    compose,
    difference,
    intersect,
    reflexive_transitive_closure,
    union,
)

__all__ = ["ReferenceEvaluator"]


class ReferenceEvaluator:
    """Evaluates path and node expressions on one tree by direct recursion,
    memoizing per (subexpression identity, relevant-assignment) pair."""

    def __init__(self, tree: XMLTree | MultiLabelTree):
        self.tree = tree
        if isinstance(tree, MultiLabelTree):
            self._shape = tree.skeleton
            self._node_has_label = tree.has_label
        else:
            self._shape = tree
            self._node_has_label = lambda node, name: tree.label(node) == name
        self._all_nodes = frozenset(self._shape.nodes)
        self._axis_cache: dict[Axis, Relation] = {}
        self._axis_closure_cache: dict[Axis, Relation] = {}
        self._path_memo: dict[tuple, tuple[PathExpr, Relation]] = {}
        self._node_memo: dict[tuple, tuple[NodeExpr, frozenset[int]]] = {}
        self._free_vars: dict[int, frozenset[str]] = {}

    # ------------------------------------------------------------ public API

    def path(self, expr: PathExpr,
             assignment: Mapping[str, int] | None = None) -> Relation:
        """``[[expr]]_PExpr`` under ``assignment`` (default: empty)."""
        return self._path(expr, dict(assignment or {}))

    def nodes(self, expr: NodeExpr,
              assignment: Mapping[str, int] | None = None) -> frozenset[int]:
        """``[[expr]]_NExpr`` under ``assignment`` (default: empty)."""
        return self._nodes(expr, dict(assignment or {}))

    # -------------------------------------------------------- axis relations

    def axis_relation(self, axis: Axis) -> Relation:
        relation = self._axis_cache.get(axis)
        if relation is None:
            relation = self._build_axis(axis)
            self._axis_cache[axis] = relation
        return relation

    def axis_closure_relation(self, axis: Axis) -> Relation:
        relation = self._axis_closure_cache.get(axis)
        if relation is None:
            relation = self._build_axis_closure(axis)
            self._axis_closure_cache[axis] = relation
        return relation

    def _build_axis(self, axis: Axis) -> Relation:
        shape = self._shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                kids = shape.children(node)
                if kids:
                    relation[node] = frozenset(kids)
        elif axis is Axis.UP:
            for node in shape.nodes:
                parent = shape.parent(node)
                if parent is not None:
                    relation[node] = frozenset((parent,))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                sibling = shape.next_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                sibling = shape.prev_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        return relation

    def _build_axis_closure(self, axis: Axis) -> Relation:
        shape = self._shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                relation[node] = frozenset(shape.descendants_or_self(node))
        elif axis is Axis.UP:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.ancestors(node)))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.following_siblings(node)))
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.preceding_siblings(node)))
        return relation

    # ------------------------------------------------------------- machinery

    def _restrict(self, expr, assignment: dict[str, int]) -> tuple:
        key = id(expr)
        fvs = self._free_vars.get(key)
        if fvs is None:
            fvs = free_variables(expr)
            self._free_vars[key] = fvs
        relevant = tuple(sorted((v, assignment[v]) for v in fvs if v in assignment))
        return (key, relevant)

    def _path(self, expr: PathExpr, assignment: dict[str, int]) -> Relation:
        memo_key = self._restrict(expr, assignment)
        cached = self._path_memo.get(memo_key)
        if cached is not None:
            return cached[1]
        result = self._path_raw(expr, assignment)
        self._path_memo[memo_key] = (expr, result)
        return result

    def _path_raw(self, expr: PathExpr, assignment: dict[str, int]) -> Relation:
        match expr:
            case AxisStep(axis=a):
                return dict(self.axis_relation(a))
            case AxisClosure(axis=a):
                return dict(self.axis_closure_relation(a))
            case Self():
                return {node: frozenset((node,)) for node in self._all_nodes}
            case Seq(left=a, right=b):
                return compose(self._path(a, assignment), self._path(b, assignment))
            case Union(left=a, right=b):
                return union(self._path(a, assignment), self._path(b, assignment))
            case Intersect(left=a, right=b):
                return intersect(self._path(a, assignment),
                                 self._path(b, assignment))
            case Complement(left=a, right=b):
                return difference(self._path(a, assignment),
                                  self._path(b, assignment))
            case Filter(path=a, predicate=p):
                allowed = self._nodes(p, assignment)
                relation = self._path(a, assignment)
                return {
                    source: kept
                    for source, targets in relation.items()
                    if (kept := targets & allowed)
                }
            case Star(path=a):
                return reflexive_transitive_closure(
                    self._path(a, assignment), self._all_nodes
                )
            case ForLoop(var=v, source=a, body=b):
                return self._for_loop(v, a, b, assignment)
        raise TypeError(f"unknown path expression {expr!r}")

    def _for_loop(self, var: str, source: PathExpr, body: PathExpr,
                  assignment: dict[str, int]) -> Relation:
        source_relation = self._path(source, assignment)
        result: dict[int, set[int]] = {}
        bound_values = {k for targets in source_relation.values() for k in targets}
        body_relations = {}
        for value in bound_values:
            inner = dict(assignment)
            inner[var] = value
            body_relations[value] = self._path(body, inner)
        for node, witnesses in source_relation.items():
            targets: set[int] = set()
            for value in witnesses:
                targets |= body_relations[value].get(node, EMPTY_TARGETS)
            if targets:
                result[node] = targets
        return {node: frozenset(targets) for node, targets in result.items()}

    def _nodes(self, expr: NodeExpr, assignment: dict[str, int]) -> frozenset[int]:
        memo_key = self._restrict(expr, assignment)
        cached = self._node_memo.get(memo_key)
        if cached is not None:
            return cached[1]
        result = self._nodes_raw(expr, assignment)
        self._node_memo[memo_key] = (expr, result)
        return result

    def _nodes_raw(self, expr: NodeExpr, assignment: dict[str, int]) -> frozenset[int]:
        match expr:
            case Label(name=name):
                return frozenset(
                    node for node in self._all_nodes
                    if self._node_has_label(node, name)
                )
            case SomePath(path=a):
                relation = self._path(a, assignment)
                return frozenset(node for node, targets in relation.items() if targets)
            case Top():
                return self._all_nodes
            case Not(child=c):
                return self._all_nodes - self._nodes(c, assignment)
            case And(left=a, right=b):
                return self._nodes(a, assignment) & self._nodes(b, assignment)
            case PathEquality(left=a, right=b):
                left_rel = self._path(a, assignment)
                right_rel = self._path(b, assignment)
                return frozenset(
                    node for node, targets in left_rel.items()
                    if targets & right_rel.get(node, EMPTY_TARGETS)
                )
            case VarIs(var=v):
                if v not in assignment:
                    raise UnboundVariableError(f"variable ${v} is unbound")
                return frozenset((assignment[v],))
        raise TypeError(f"unknown node expression {expr!r}")
