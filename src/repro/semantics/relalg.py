"""Relation algebra over tree nodes, shared by every evaluation backend.

A binary relation is represented as ``dict[int, frozenset[int]]`` mapping
each source node to its set of targets (sources with no targets are absent).
All operations are pure: they never mutate their inputs, so results may be
shared and cached freely.
"""

from __future__ import annotations

__all__ = [
    "EMPTY_TARGETS",
    "Relation",
    "compose",
    "difference",
    "intersect",
    "reflexive_transitive_closure",
    "relation_pairs",
    "union",
]

#: A binary relation over tree nodes: source -> set of targets.
Relation = dict[int, frozenset[int]]

EMPTY_TARGETS: frozenset[int] = frozenset()


def compose(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, mids in first.items():
        targets: set[int] = set()
        for mid in mids:
            targets |= second.get(mid, EMPTY_TARGETS)
        if targets:
            result[source] = frozenset(targets)
    return result


def union(first: Relation, second: Relation) -> Relation:
    result = dict(first)
    for source, targets in second.items():
        existing = result.get(source)
        result[source] = targets if existing is None else existing | targets
    return result


def intersect(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, targets in first.items():
        kept = targets & second.get(source, EMPTY_TARGETS)
        if kept:
            result[source] = kept
    return result


def difference(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, targets in first.items():
        kept = targets - second.get(source, EMPTY_TARGETS)
        if kept:
            result[source] = kept
    return result


def reflexive_transitive_closure(relation: Relation,
                                 nodes: range | frozenset[int]) -> Relation:
    result: Relation = {}
    for start in nodes:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for target in relation.get(node, EMPTY_TARGETS):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        result[start] = frozenset(seen)
    return result


def relation_pairs(relation: Relation) -> frozenset[tuple[int, int]]:
    """Flatten a relation to a set of (source, target) pairs."""
    return frozenset(
        (source, target)
        for source, targets in relation.items()
        for target in targets
    )
