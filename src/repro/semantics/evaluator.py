"""The denotational semantics of Table II, extended per §2.2 and §7.

Path expressions denote binary relations over tree nodes, represented as
``dict[int, frozenset[int]]`` mapping each source node to its set of targets
(nodes with no targets may be absent).  Node expressions denote sets of nodes.
Expressions with free node variables are evaluated relative to an
*assignment* mapping variable names to nodes (§7).

Since the engine-kernel refactor this module is a thin facade: expressions
are compiled once into a :class:`~repro.semantics.plan.Plan` (normalized,
interned, common subexpressions shared — see :mod:`repro.xpath.intern`) and
executed against a per-tree :class:`~repro.semantics.plan.TreeContext`.
Plans are cached globally, so constructing a fresh :class:`Evaluator` per
tree is cheap; the per-tree state is just the lazily-built axis relations
and label index.  The original recursive evaluator survives unchanged as
:class:`repro.semantics.reference.ReferenceEvaluator` and serves as the
oracle for the differential test suite.
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import Axis, NodeExpr, PathExpr
from .plan import Plan, TreeContext, UnboundVariableError, compile_plan
from .relalg import EMPTY_TARGETS, Relation, relation_pairs

__all__ = [
    "Evaluator",
    "Relation",
    "UnboundVariableError",
    "evaluate_path",
    "evaluate_nodes",
    "holds_somewhere",
    "holds_at",
    "path_contained_on",
    "relation_pairs",
]


class Evaluator:
    """Evaluates path and node expressions on one tree (standard or
    multi-labeled).

    Each call compiles (or fetches from the global plan cache) a plan for
    the expression and runs it against this tree's shared
    :class:`TreeContext`.  Results for repeated expressions on the same
    tree come straight from the context's caches and the plan's shared
    slots.
    """

    def __init__(self, tree: XMLTree | MultiLabelTree):
        self.tree = tree
        self.context = TreeContext(tree)

    # ------------------------------------------------------------ public API

    def path(self, expr: PathExpr,
             assignment: Mapping[str, int] | None = None) -> Relation:
        """``[[expr]]_PExpr`` under ``assignment`` (default: empty)."""
        obs.count("evaluator.calls")
        result = compile_plan(expr).run(self.context, assignment)[0]
        assert isinstance(result, dict)
        return result

    def nodes(self, expr: NodeExpr,
              assignment: Mapping[str, int] | None = None) -> frozenset[int]:
        """``[[expr]]_NExpr`` under ``assignment`` (default: empty)."""
        obs.count("evaluator.calls")
        result = compile_plan(expr).run(self.context, assignment)[0]
        assert isinstance(result, frozenset)
        return result

    def plan(self, *exprs: PathExpr | NodeExpr) -> Plan:
        """Compile a (cached) multi-root plan; run it with ``self.context``."""
        return compile_plan(*exprs)

    # -------------------------------------------------------- axis relations

    def axis_relation(self, axis: Axis) -> Relation:
        return self.context.axis_relation(axis)

    def axis_closure_relation(self, axis: Axis) -> Relation:
        return self.context.axis_closure_relation(axis)


# ---------------------------------------------------------- convenience API


def evaluate_path(tree: XMLTree | MultiLabelTree, expr: PathExpr,
                  assignment: Mapping[str, int] | None = None) -> Relation:
    """One-shot ``[[expr]]_PExpr`` on ``tree``."""
    return Evaluator(tree).path(expr, assignment)


def evaluate_nodes(tree: XMLTree | MultiLabelTree, expr: NodeExpr,
                   assignment: Mapping[str, int] | None = None) -> frozenset[int]:
    """One-shot ``[[expr]]_NExpr`` on ``tree``."""
    return Evaluator(tree).nodes(expr, assignment)


def holds_somewhere(tree: XMLTree | MultiLabelTree, expr: NodeExpr) -> bool:
    """True iff ``[[expr]]_NExpr`` is nonempty on ``tree``."""
    return bool(evaluate_nodes(tree, expr))


def holds_at(tree: XMLTree | MultiLabelTree, expr: NodeExpr, node: int) -> bool:
    """True iff ``node ∈ [[expr]]_NExpr`` on ``tree``."""
    return node in evaluate_nodes(tree, expr)


def path_contained_on(tree: XMLTree | MultiLabelTree,
                      alpha: PathExpr, beta: PathExpr) -> bool:
    """True iff ``[[α]] ⊆ [[β]]`` *on this particular tree*."""
    left, right = compile_plan(alpha, beta).run(TreeContext(tree))
    assert isinstance(left, dict) and isinstance(right, dict)
    return all(targets <= right.get(source, EMPTY_TARGETS)
               for source, targets in left.items())
