"""The denotational semantics of Table II, extended per §2.2 and §7.

Path expressions denote binary relations over tree nodes, represented as
``dict[int, frozenset[int]]`` mapping each source node to its set of targets
(nodes with no targets may be absent).  Node expressions denote sets of nodes.
Expressions with free node variables are evaluated relative to an
*assignment* mapping variable names to nodes (§7).

The evaluator memoizes per (subexpression, relevant-assignment) pair, so
repeated subexpressions and for-loop bodies are not recomputed.
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Complement,
    Filter,
    ForLoop,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathEquality,
    PathExpr,
    Self,
    Seq,
    SomePath,
    Star,
    Top,
    Union,
    VarIs,
)
from ..xpath.measures import free_variables

__all__ = [
    "Evaluator",
    "Relation",
    "evaluate_path",
    "evaluate_nodes",
    "holds_somewhere",
    "holds_at",
    "path_contained_on",
    "relation_pairs",
]

#: A binary relation over tree nodes: source -> set of targets.
Relation = dict[int, frozenset[int]]

_EMPTY: frozenset[int] = frozenset()


class UnboundVariableError(LookupError):
    """A ``. is $x`` test was evaluated with ``$x`` unbound."""


class Evaluator:
    """Evaluates path and node expressions on one tree (standard or
    multi-labeled)."""

    def __init__(self, tree: XMLTree | MultiLabelTree):
        self.tree = tree
        if isinstance(tree, MultiLabelTree):
            self._shape = tree.skeleton
            self._node_has_label = tree.has_label
        else:
            self._shape = tree
            self._node_has_label = lambda node, name: tree.label(node) == name
        self._all_nodes = frozenset(self._shape.nodes)
        self._axis_cache: dict[Axis, Relation] = {}
        self._axis_closure_cache: dict[Axis, Relation] = {}
        # Memo tables keyed by (id(expr), assignment restricted to free vars).
        # The expression object itself is stored to keep its id alive.
        self._path_memo: dict[tuple, tuple[PathExpr, Relation]] = {}
        self._node_memo: dict[tuple, tuple[NodeExpr, frozenset[int]]] = {}
        self._free_vars: dict[int, frozenset[str]] = {}

    # ------------------------------------------------------------ public API

    def path(self, expr: PathExpr,
             assignment: Mapping[str, int] | None = None) -> Relation:
        """``[[expr]]_PExpr`` under ``assignment`` (default: empty)."""
        obs.count("evaluator.calls")
        return self._path(expr, dict(assignment or {}))

    def nodes(self, expr: NodeExpr,
              assignment: Mapping[str, int] | None = None) -> frozenset[int]:
        """``[[expr]]_NExpr`` under ``assignment`` (default: empty)."""
        obs.count("evaluator.calls")
        return self._nodes(expr, dict(assignment or {}))

    # -------------------------------------------------------- axis relations

    def axis_relation(self, axis: Axis) -> Relation:
        relation = self._axis_cache.get(axis)
        if relation is None:
            relation = self._build_axis(axis)
            self._axis_cache[axis] = relation
        return relation

    def axis_closure_relation(self, axis: Axis) -> Relation:
        relation = self._axis_closure_cache.get(axis)
        if relation is None:
            relation = self._build_axis_closure(axis)
            self._axis_closure_cache[axis] = relation
        return relation

    def _build_axis(self, axis: Axis) -> Relation:
        shape = self._shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                kids = shape.children(node)
                if kids:
                    relation[node] = frozenset(kids)
        elif axis is Axis.UP:
            for node in shape.nodes:
                parent = shape.parent(node)
                if parent is not None:
                    relation[node] = frozenset((parent,))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                sibling = shape.next_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                sibling = shape.prev_sibling(node)
                if sibling is not None:
                    relation[node] = frozenset((sibling,))
        return relation

    def _build_axis_closure(self, axis: Axis) -> Relation:
        shape = self._shape
        relation: Relation = {}
        if axis is Axis.DOWN:
            for node in shape.nodes:
                relation[node] = frozenset(shape.descendants_or_self(node))
        elif axis is Axis.UP:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.ancestors(node)))
        elif axis is Axis.RIGHT:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.following_siblings(node)))
        elif axis is Axis.LEFT:
            for node in shape.nodes:
                relation[node] = frozenset((node, *shape.preceding_siblings(node)))
        return relation

    # ------------------------------------------------------------- machinery

    def _restrict(self, expr, assignment: dict[str, int]) -> tuple:
        key = id(expr)
        fvs = self._free_vars.get(key)
        if fvs is None:
            fvs = free_variables(expr)
            self._free_vars[key] = fvs
        relevant = tuple(sorted((v, assignment[v]) for v in fvs if v in assignment))
        return (key, relevant)

    def _path(self, expr: PathExpr, assignment: dict[str, int]) -> Relation:
        memo_key = self._restrict(expr, assignment)
        cached = self._path_memo.get(memo_key)
        if cached is not None:
            return cached[1]
        result = self._path_raw(expr, assignment)
        self._path_memo[memo_key] = (expr, result)
        return result

    def _path_raw(self, expr: PathExpr, assignment: dict[str, int]) -> Relation:
        match expr:
            case AxisStep(axis=a):
                return dict(self.axis_relation(a))
            case AxisClosure(axis=a):
                return dict(self.axis_closure_relation(a))
            case Self():
                return {node: frozenset((node,)) for node in self._all_nodes}
            case Seq(left=a, right=b):
                return _compose(self._path(a, assignment), self._path(b, assignment))
            case Union(left=a, right=b):
                return _union(self._path(a, assignment), self._path(b, assignment))
            case Intersect(left=a, right=b):
                return _intersect(self._path(a, assignment), self._path(b, assignment))
            case Complement(left=a, right=b):
                return _difference(self._path(a, assignment), self._path(b, assignment))
            case Filter(path=a, predicate=p):
                allowed = self._nodes(p, assignment)
                relation = self._path(a, assignment)
                return {
                    source: kept
                    for source, targets in relation.items()
                    if (kept := targets & allowed)
                }
            case Star(path=a):
                return _reflexive_transitive_closure(
                    self._path(a, assignment), self._all_nodes
                )
            case ForLoop(var=v, source=a, body=b):
                return self._for_loop(v, a, b, assignment)
        raise TypeError(f"unknown path expression {expr!r}")

    def _for_loop(self, var: str, source: PathExpr, body: PathExpr,
                  assignment: dict[str, int]) -> Relation:
        source_relation = self._path(source, assignment)
        result: dict[int, set[int]] = {}
        bound_values = {k for targets in source_relation.values() for k in targets}
        body_relations = {}
        for value in bound_values:
            inner = dict(assignment)
            inner[var] = value
            body_relations[value] = self._path(body, inner)
        for node, witnesses in source_relation.items():
            targets: set[int] = set()
            for value in witnesses:
                targets |= body_relations[value].get(node, _EMPTY)
            if targets:
                result[node] = targets
        return {node: frozenset(targets) for node, targets in result.items()}

    def _nodes(self, expr: NodeExpr, assignment: dict[str, int]) -> frozenset[int]:
        memo_key = self._restrict(expr, assignment)
        cached = self._node_memo.get(memo_key)
        if cached is not None:
            return cached[1]
        result = self._nodes_raw(expr, assignment)
        self._node_memo[memo_key] = (expr, result)
        return result

    def _nodes_raw(self, expr: NodeExpr, assignment: dict[str, int]) -> frozenset[int]:
        match expr:
            case Label(name=name):
                return frozenset(
                    node for node in self._all_nodes
                    if self._node_has_label(node, name)
                )
            case SomePath(path=a):
                relation = self._path(a, assignment)
                return frozenset(node for node, targets in relation.items() if targets)
            case Top():
                return self._all_nodes
            case Not(child=c):
                return self._all_nodes - self._nodes(c, assignment)
            case And(left=a, right=b):
                return self._nodes(a, assignment) & self._nodes(b, assignment)
            case PathEquality(left=a, right=b):
                left_rel = self._path(a, assignment)
                right_rel = self._path(b, assignment)
                return frozenset(
                    node for node, targets in left_rel.items()
                    if targets & right_rel.get(node, _EMPTY)
                )
            case VarIs(var=v):
                if v not in assignment:
                    raise UnboundVariableError(f"variable ${v} is unbound")
                return frozenset((assignment[v],))
        raise TypeError(f"unknown node expression {expr!r}")


# ------------------------------------------------------------- relation ops


def _compose(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, mids in first.items():
        targets: set[int] = set()
        for mid in mids:
            targets |= second.get(mid, _EMPTY)
        if targets:
            result[source] = frozenset(targets)
    return result


def _union(first: Relation, second: Relation) -> Relation:
    result = dict(first)
    for source, targets in second.items():
        existing = result.get(source)
        result[source] = targets if existing is None else existing | targets
    return result


def _intersect(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, targets in first.items():
        kept = targets & second.get(source, _EMPTY)
        if kept:
            result[source] = kept
    return result


def _difference(first: Relation, second: Relation) -> Relation:
    result: Relation = {}
    for source, targets in first.items():
        kept = targets - second.get(source, _EMPTY)
        if kept:
            result[source] = kept
    return result


def _reflexive_transitive_closure(relation: Relation, nodes: frozenset[int]) -> Relation:
    result: Relation = {}
    for start in nodes:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for target in relation.get(node, _EMPTY):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        result[start] = frozenset(seen)
    return result


# ---------------------------------------------------------- convenience API


def evaluate_path(tree: XMLTree | MultiLabelTree, expr: PathExpr,
                  assignment: Mapping[str, int] | None = None) -> Relation:
    """One-shot ``[[expr]]_PExpr`` on ``tree``."""
    return Evaluator(tree).path(expr, assignment)


def evaluate_nodes(tree: XMLTree | MultiLabelTree, expr: NodeExpr,
                   assignment: Mapping[str, int] | None = None) -> frozenset[int]:
    """One-shot ``[[expr]]_NExpr`` on ``tree``."""
    return Evaluator(tree).nodes(expr, assignment)


def holds_somewhere(tree: XMLTree | MultiLabelTree, expr: NodeExpr) -> bool:
    """True iff ``[[expr]]_NExpr`` is nonempty on ``tree``."""
    return bool(evaluate_nodes(tree, expr))


def holds_at(tree: XMLTree | MultiLabelTree, expr: NodeExpr, node: int) -> bool:
    """True iff ``node ∈ [[expr]]_NExpr`` on ``tree``."""
    return node in evaluate_nodes(tree, expr)


def path_contained_on(tree: XMLTree | MultiLabelTree,
                      alpha: PathExpr, beta: PathExpr) -> bool:
    """True iff ``[[α]] ⊆ [[β]]`` *on this particular tree*."""
    evaluator = Evaluator(tree)
    left = evaluator.path(alpha)
    right = evaluator.path(beta)
    return all(targets <= right.get(source, _EMPTY)
               for source, targets in left.items())


def relation_pairs(relation: Relation) -> frozenset[tuple[int, int]]:
    """Flatten a relation to a set of (source, target) pairs."""
    return frozenset(
        (source, target)
        for source, targets in relation.items()
        for target in targets
    )
