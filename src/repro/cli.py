"""Command-line interface: ``python -m repro <command> …``.

Commands
--------

* ``evaluate PATH [--doc FILE | --xml STRING] [--from NODE]`` — evaluate a
  path expression on a document and print the selected pairs/nodes.
* ``satisfiable NODE_EXPR [--schema FILE] [--max-nodes N]`` — decide node
  satisfiability; prints the verdict and a witness document if one exists.
* ``contains ALPHA BETA [--schema FILE] [--max-nodes N]`` — decide path
  containment; prints the verdict and a counterexample if one exists.
* ``translate EXPR --to {eq,for,normal-form,official}`` — run one of the
  paper's translations on an expression and print the result.
* ``simplify EXPR [--passes LEVEL] [--schema FILE]`` — print the rewrite
  pipeline's canonical form of an expression (the exact input every engine
  sees); ``--stats``-style per-pass statistics go to stderr.
* ``validate --schema FILE [--doc FILE | --xml STRING]`` — EDTD conformance.
* ``batch INPUT.jsonl [--workers N] [--timeout S] [--race] [--cache-dir D]``
  — decide a JSONL stream of problems on a worker pool (see
  :mod:`repro.parallel`); answers are emitted as JSONL.  With ``--server
  ADDRESS`` the stream is shipped to a running daemon instead.
* ``serve [--port P] [--socket PATH] …`` — the containment daemon (see
  :mod:`repro.server`): a resident executor + verdict cache behind HTTP
  (``/v1/solve``, ``/healthz``, ``/stats``) and the batch JSONL protocol.
* ``cache gc|info [--cache-dir D]`` — garbage-collect the verdict cache
  down to ``--max-entries``/``--max-bytes``, or print its totals.
* ``report BENCH_obs.json [--compare BASELINE --fail-on-regression PCT]``
  — render the benchmark harness's per-test perf artifact as a table, or
  gate against a committed baseline (the CI perf-regression job).

The decision commands take ``--stats`` (human-readable run statistics on
stderr), ``--trace FILE`` (a Chrome trace-event JSON file — load it at
https://ui.perfetto.dev — whose ``otherData.runs`` carries the full
:class:`repro.obs.RunRecord` dicts; ``-`` for stderr; ``--trace-json`` is
an alias kept from the format's RunRecord-only first generation), and
``--engine NAME`` to force a registered decision engine (``patterns``,
``expspace``, ``automata``, ``bounded``, ``random``; the default ``auto``
lets the engine registry pick — see :mod:`repro.analysis.registry`), and
``--passes {none,basic,full}`` to set the session rewrite-pipeline level
(:mod:`repro.xpath.passes`; default ``full``) applied to every expression
before dispatch and cache keying.  ``batch`` takes the same flags with the
same semantics, applied per problem: a forced ``--engine`` becomes the
default for every line (overridable per line by a JSONL ``engine`` field),
``--stats`` reports the merged run record of the whole batch, and
``--trace`` merges the coordinator's and every worker process's span trees
into one cross-process timeline (one Perfetto lane per worker pid).

Stream and exit-code contract: *answers* (verdicts, witnesses,
counterexamples, evaluation results) go to stdout; *diagnostics* (errors,
warnings, ``--stats`` reports) go to stderr.  Exit codes: 0 — conclusive
positive answer (satisfiable / contained / valid); 1 — conclusive negative
answer (counterexample found / invalid document); 2 — error, or an
inconclusive bounded-search verdict (no witness up to the bound, which is
*not* a proof: see ``Verdict.NO_WITNESS_WITHIN_BOUND``).  The contract
holds even when a forced engine declines or raises at runtime: the
failure is a diagnostic on stderr and exit code 2, never a traceback.

``batch`` emits one JSON object per problem on the answer stream and a
one-line summary on stderr; its exit code is 0 when every problem
produced a verdict and 2 when some input line was malformed or some
problem could not be decided by any engine.

Schemas are text files with one ``label = content-model`` rule per line; the
first rule's label is the root type (lines like ``label -> concrete`` after
a ``%projection`` marker define an EDTD projection).  Expressions use the
library's ASCII syntax (see ``repro.xpath.parser``), which also accepts
official XPath axis steps such as ``child::a`` or ``descendant::a``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis import contains as _contains
from .analysis import satisfiable as _satisfiable
from .edtd import EDTD
from .obs import RunRecord
from .semantics import evaluate_path
from .trees import XMLTree, from_xml, to_indented
from .xpath import parse_node, parse_path, to_paper, to_source

__all__ = ["main", "load_schema"]


def load_schema(path: str) -> EDTD:
    """Parse the CLI schema format into an :class:`EDTD`."""
    rules: dict[str, str] = {}
    projection: dict[str, str] = {}
    root: str | None = None
    in_projection = False
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line == "%projection":
                in_projection = True
                continue
            if in_projection:
                name, _, concrete = line.partition("->")
                projection[name.strip()] = concrete.strip()
                continue
            name, separator, body = line.partition("=")
            if not separator:
                raise ValueError(f"bad schema rule: {line!r}")
            name = name.strip()
            rules[name] = body.strip()
            if root is None:
                root = name
    if root is None:
        raise ValueError("schema file has no rules")
    return EDTD.from_rules(rules, root_type=root,
                           projection=projection or None)


def _load_document(args) -> XMLTree:
    if args.doc:
        with open(args.doc, encoding="utf-8") as handle:
            return from_xml(handle.read())
    if args.xml:
        return from_xml(args.xml)
    raise SystemExit("provide a document via --doc FILE or --xml STRING")


def _cmd_evaluate(args) -> int:
    tree = _load_document(args)
    path = parse_path(args.path)
    relation = evaluate_path(tree, path)
    if args.from_node is not None:
        targets = sorted(relation.get(args.from_node, frozenset()))
        print(f"from node {args.from_node}: {targets}")
    else:
        for source in sorted(relation):
            print(f"{source} -> {sorted(relation[source])}")
    return 0


def _wants_stats(args) -> bool:
    return bool(args.stats or args.trace)


def _emit_stats(stats: dict | None, args,
                trace_payload: dict | None = None) -> None:
    """Route the run record to the requested sinks (all diagnostics).

    ``--stats`` prints the human summary; ``--trace`` writes a Chrome
    trace-event payload (``trace_payload`` when the caller pre-built one —
    the batch command's cross-process merge — else a single-process render
    of ``stats``).
    """
    if stats is None:
        return
    run_record = RunRecord.from_dict(stats)
    if args.stats:
        print(run_record.summary(), file=sys.stderr)
    if args.trace:
        from .obs import traceout

        if trace_payload is None:
            trace_payload = traceout.single_trace(run_record)
        if args.trace == "-":
            print(json.dumps(trace_payload, sort_keys=True), file=sys.stderr)
        else:
            traceout.write_trace(args.trace, trace_payload)


def _warn_inconclusive(explored_up_to: int | None) -> None:
    bound = f" up to {explored_up_to} nodes" if explored_up_to else ""
    print(f"warning: no witness found{bound}; the search bound was "
          "exhausted, so this is evidence, not a proof "
          "(raise --max-nodes to search further)", file=sys.stderr)


def _apply_passes(args) -> None:
    """Install the requested rewrite-pipeline level as the session default
    (commands run once per process, so there is nothing to restore)."""
    from .xpath import passes

    passes.set_default_pipeline(args.passes)


def _cmd_satisfiable(args) -> int:
    _apply_passes(args)
    phi = parse_node(args.expr)
    edtd = load_schema(args.schema) if args.schema else None
    result = _satisfiable(phi, edtd=edtd, method=args.engine,
                          max_nodes=args.max_nodes, stats=_wants_stats(args))
    print(f"verdict: {result.verdict.value} (conclusive: {result.conclusive})")
    if result.witness is not None:
        print("witness document:")
        print(to_indented(result.witness))
        print(f"satisfied at node {result.witness_node}")
    _emit_stats(result.stats, args)
    if result.witness is not None or result.conclusive:
        return 0
    _warn_inconclusive(result.explored_up_to)
    return 2


def _cmd_contains(args) -> int:
    _apply_passes(args)
    alpha = parse_path(args.alpha)
    beta = parse_path(args.beta)
    edtd = load_schema(args.schema) if args.schema else None
    result = _contains(alpha, beta, edtd=edtd, method=args.engine,
                       max_nodes=args.max_nodes, stats=_wants_stats(args))
    print(f"contained: {result.contained} (conclusive: {result.conclusive})")
    if result.counterexample is not None:
        d, e = result.counterexample_pair
        print(f"counterexample (pair {d} -> {e}):")
        print(to_indented(result.counterexample))
        _emit_stats(result.stats, args)
        return 1
    _emit_stats(result.stats, args)
    if result.conclusive:
        return 0
    _warn_inconclusive(result.explored_up_to)
    return 2


def _parse_batch_line(line: str, number: int, args, edtd) -> tuple:
    """One JSONL problem line -> (record_id, Problem).  Raises ValueError
    with a line-scoped message on malformed input.  The record format
    itself lives in :mod:`repro.server.protocol` (shared with the
    daemon); this wrapper adds JSON decoding, the ``line N:`` scoping
    and the line-number default id."""
    from .server.protocol import parse_problem_record

    try:
        data = json.loads(line)
    except ValueError as error:
        raise ValueError(f"line {number}: invalid JSON: {error}") from error
    try:
        record_id, kind_name, problem = parse_problem_record(
            data, edtd=edtd, default_max_nodes=args.max_nodes,
            default_engine=None if args.engine == "auto" else args.engine)
    except ValueError as error:
        raise ValueError(f"line {number}: {error}") from error
    if record_id is None:
        record_id = number
    return record_id, kind_name, problem


def _batch_record(record_id, kind_name, outcome) -> dict:
    from .server.protocol import outcome_record

    return outcome_record(record_id, kind_name, outcome)


def _batch_via_server(args, lines) -> int:
    """``repro batch --server``: ship the stream to a running daemon over
    its JSONL socket instead of spawning a local worker pool.  Records
    come back in input order and in the same shape as a local batch
    (default ids number the *payload* lines, since the daemon never sees
    blanks or comments)."""
    import time

    from .server.client import ServerClient

    if args.schema:
        raise ValueError("--schema is not supported with --server; "
                         "configure the schema on the daemon "
                         "(repro serve --schema)")
    payload = []
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            data = json.loads(text)
        except ValueError:
            # Ship it anyway: the daemon answers the same error record a
            # local batch would emit for the malformed line.
            payload.append(text)
            continue
        if isinstance(data, dict):
            # Fold the CLI-level defaults into each record; explicit
            # per-line fields always win, exactly as in a local batch.
            if "max_nodes" not in data and args.max_nodes != 6:
                data["max_nodes"] = args.max_nodes
            if "engine" not in data and args.engine != "auto":
                data["engine"] = args.engine
            if "timeout" not in data and args.timeout is not None:
                data["timeout"] = args.timeout
            text = json.dumps(data, sort_keys=True)
        payload.append(text)
    client = ServerClient(args.server)
    started = time.perf_counter()
    records = client.solve_lines(payload)
    wall = time.perf_counter() - started
    out = sys.stdout
    if args.output and args.output != "-":
        out = open(args.output, "w", encoding="utf-8")
    try:
        for record in records:
            print(json.dumps(record, sort_keys=True), file=out)
    finally:
        if out is not sys.stdout:
            out.close()
    failed = sum(1 for record in records if "error" in record)
    cache_hits = sum(1 for record in records if record.get("cache") == "hit")
    print(f"batch: {len(records)} problems in {wall:.2f}s via server "
          f"{args.server} ({cache_hits} cache hits, {failed} "
          "errors)", file=sys.stderr)
    return 2 if failed else 0


def _cmd_batch(args) -> int:
    from . import obs
    from .analysis import default_registry
    from .parallel import BatchRunner, VerdictCache

    _apply_passes(args)
    if args.engine != "auto" and args.engine not in default_registry().names():
        raise ValueError(
            f"unknown engine {args.engine!r} (registered: "
            f"{', '.join(default_registry().names())})")
    edtd = load_schema(args.schema) if args.schema else None
    if args.input == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.input, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    if args.server:
        return _batch_via_server(args, lines)
    problems = []
    ids: list[tuple] = []
    bad_records: list[dict] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            record_id, kind_name, problem = _parse_batch_line(
                line, number, args, edtd)
        except ValueError as error:
            bad_records.append({"id": number, "error": str(error)})
            continue
        ids.append((record_id, kind_name))
        problems.append(problem)

    cache = None if args.no_cache else VerdictCache(args.cache_dir)
    # --trace needs the full cross-process picture: coordinator-thread
    # recordings plus every worker's shipped run record.
    runner = BatchRunner(workers=args.workers, timeout=args.timeout,
                         race=args.race, cache=cache,
                         collect_stats=bool(args.trace))
    trace_payload = None
    if _wants_stats(args):
        with obs.record("batch") as recording:
            report = runner.run(problems)
        stats = recording.to_run_record().to_dict()
        if args.trace:
            from .obs import traceout

            trace_payload = traceout.batch_trace(report, coordinator=stats)
    else:
        report = runner.run(problems)
        stats = None

    records = [_batch_record(record_id, kind_name, outcome)
               for (record_id, kind_name), outcome
               in zip(ids, report.outcomes)]
    records.extend(bad_records)
    out = sys.stdout
    if args.output and args.output != "-":
        out = open(args.output, "w", encoding="utf-8")
    try:
        for record in records:
            print(json.dumps(record, sort_keys=True), file=out)
    finally:
        if out is not sys.stdout:
            out.close()

    summary = report.summary()
    if cache is not None:
        summary["cache"] = cache.info()
    print(f"batch: {summary['problems']} problems in "
          f"{summary['wall_s']:.2f}s on {summary['workers']} workers "
          f"({summary['cache_hits']} cache hits, {summary['timeouts']} "
          f"timeouts, {summary['worker_failures']} engine failures, "
          f"{summary['unsolved']} unsolved, {len(bad_records)} bad input "
          "lines)", file=sys.stderr)
    if args.stats:
        for entry in report.schemas:
            reuse = entry["session_reuse"]
            reuse_text = "n/a" if reuse is None else f"{reuse:.0%}"
            print(f"schema {entry['schema_id'][:12]}: "
                  f"{entry['problems']} problems, compiled once in "
                  f"{entry['compile_s'] * 1000:.1f}ms, "
                  f"{entry['cache_hits']} cache hits, "
                  f"session hit rate {reuse_text}", file=sys.stderr)
    if stats is not None:
        _emit_stats(stats, args, trace_payload)
    if bad_records or report.failed:
        return 2
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .server import ReproServer, ServerConfig

    engines = tuple(name for chunk in (args.engines or [])
                    for name in chunk.split(",") if name) or None
    config = ServerConfig(
        host=args.host, port=args.port,
        jsonl_path=args.socket, jsonl_port=args.jsonl_port,
        workers=args.workers, timeout=args.timeout, race=args.race,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        schema=args.schema, passes=args.passes,
        max_timeout=args.max_timeout, max_nodes_cap=args.max_nodes_cap,
        default_max_nodes=args.max_nodes, engines=engines,
        max_inflight=args.max_inflight, drain_s=args.drain_s)
    server = ReproServer(config)

    async def _serve() -> None:
        await server.start()
        listening = []
        if server.http_port is not None:
            listening.append(f"http://{config.host}:{server.http_port}")
        if server.jsonl_path is not None:
            listening.append(f"jsonl unix:{server.jsonl_path}")
        if server.jsonl_port is not None:
            listening.append(f"jsonl tcp:{config.host}:{server.jsonl_port}")
        print(f"repro serve: listening on {', '.join(listening)} "
              f"({server.service.workers} workers, passes "
              f"{config.passes}); SIGTERM drains", file=sys.stderr,
              flush=True)
        await server.serve_forever()

    asyncio.run(_serve())
    return 0


def _cmd_cache(args) -> int:
    from .parallel import VerdictCache

    cache = VerdictCache(args.cache_dir)
    if args.cache_command == "gc":
        summary = cache.gc(max_entries=args.max_entries,
                           max_bytes=args.max_bytes)
        print(json.dumps(summary, sort_keys=True))
        print(f"cache gc: removed {summary['removed']} of "
              f"{summary['scanned']} entries "
              f"({summary['bytes_removed']} bytes) under {cache.directory}; "
              f"{summary['entries']} entries / {summary['bytes']} bytes "
              "remain", file=sys.stderr)
        return 0
    # "info": an unbounded gc() is a pure scan — it yields the live
    # entry/byte totals without deleting anything.
    summary = cache.gc()
    info = cache.info()
    info["entries"] = summary["entries"]
    info["bytes"] = summary["bytes"]
    print(json.dumps(info, sort_keys=True))
    return 0


def _cmd_report(args) -> int:
    from .obs import report as obs_report

    payload = obs_report.load_bench(args.input)
    required = [key for chunk in (args.require_keys or [])
                for key in chunk.split(",") if key]
    missing = obs_report.missing_keys(payload, required)
    if args.compare:
        baseline = obs_report.load_bench(args.compare)
        comparison = obs_report.compare(
            payload, baseline, fail_pct=args.fail_on_regression,
            min_duration_s=args.min_duration)
        print(obs_report.render_report(comparison, missing), file=sys.stderr)
        return 0 if comparison.ok and not missing else 1
    print(obs_report.render_table(payload))
    for prefix in missing:
        print(f"FAIL missing instrumentation: no key matches {prefix!r}",
              file=sys.stderr)
    return 1 if missing else 0


def _cmd_translate(args) -> int:
    if args.to == "official":
        from .xpath.official import to_official
        try:
            expr = parse_path(args.expr)
        except Exception:  # noqa: BLE001 - fall back to node expressions
            expr = parse_node(args.expr)
        print(to_official(expr))
        return 0
    if args.to == "eq":
        from .automata import FreshLabels, node_to_let_nf, path_to_epa
        from .automata.toexpr import epa_to_path, letnf_to_expr
        try:
            path = parse_path(args.expr)
            translated = epa_to_path(path_to_epa(path, FreshLabels()))
        except Exception:  # noqa: BLE001
            node = parse_node(args.expr)
            translated = letnf_to_expr(node_to_let_nf(node, FreshLabels()))
        print(to_source(translated))
        return 0
    if args.to == "for":
        from .lowerbounds import eliminate_complements
        path = parse_path(args.expr)
        print(to_source(eliminate_complements(path)))
        return 0
    if args.to == "normal-form":
        from .automata import to_normal_form
        node = parse_node(args.expr)
        print(repr(to_normal_form(node)))
        return 0
    raise SystemExit(f"unknown translation target {args.to!r}")


def _cmd_simplify(args) -> int:
    from .xpath import canonical_with_stats

    try:
        expr = parse_path(args.expr)
    except Exception:  # noqa: BLE001 - fall back to node expressions
        expr = parse_node(args.expr)
    alphabet = None
    if args.schema:
        alphabet = load_schema(args.schema).concrete_labels()
    result, stats = canonical_with_stats(expr, level=args.passes,
                                         alphabet=alphabet)
    print(to_source(result))
    print(f"passes: level={stats.level} nodes {stats.nodes_before} -> "
          f"{stats.nodes_after}", file=sys.stderr)
    for name, entry in sorted(stats.per_pass.items()):
        print(f"  {name}: fired={entry['fired']} "
              f"nodes {entry['nodes_before']} -> {entry['nodes_after']}",
              file=sys.stderr)
    return 0


def _cmd_validate(args) -> int:
    edtd = load_schema(args.schema)
    tree = _load_document(args)
    try:
        edtd.validate(tree)
    except ValueError as error:
        print(f"INVALID: {error}")
        return 1
    print("valid")
    return 0


def _cmd_show(args) -> int:
    try:
        expr = parse_path(args.expr)
    except Exception:  # noqa: BLE001
        expr = parse_node(args.expr)
    from .xpath import size
    from .xpath.fragments import fragment_of
    print(f"paper notation: {to_paper(expr)}")
    print(f"size: {size(expr)}")
    print(f"fragment: {fragment_of(expr).name}")
    return 0


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--stats", action="store_true",
        help="print run statistics (engine, spans, counters) to stderr")
    subparser.add_argument(
        "--trace", "--trace-json", dest="trace", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON file to FILE ('-' for "
             "stderr): load it at https://ui.perfetto.dev; the full "
             "RunRecords ride along under otherData.runs "
             "(--trace-json is an alias)")
    subparser.add_argument(
        "--engine", metavar="NAME", default="auto",
        help="force a registered decision engine (e.g. patterns, expspace, "
             "automata, bounded, random); default: auto-select the cheapest "
             "conclusive engine that admits the input")
    subparser.add_argument(
        "--passes", choices=["none", "basic", "full"], default="full",
        help="rewrite-pipeline level applied to every expression before "
             "dispatch and cache keying (default: full)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoreXPath containment & satisfiability "
                    "(ten Cate & Lutz, PODS 2007)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate = commands.add_parser("evaluate", help="evaluate a path on a document")
    evaluate.add_argument("path")
    evaluate.add_argument("--doc")
    evaluate.add_argument("--xml")
    evaluate.add_argument("--from", dest="from_node", type=int, default=None)
    evaluate.set_defaults(func=_cmd_evaluate)

    sat = commands.add_parser("satisfiable", help="node satisfiability")
    sat.add_argument("expr")
    sat.add_argument("--schema")
    sat.add_argument("--max-nodes", type=int, default=6)
    _add_obs_flags(sat)
    sat.set_defaults(func=_cmd_satisfiable)

    cont = commands.add_parser("contains", help="path containment")
    cont.add_argument("alpha")
    cont.add_argument("beta")
    cont.add_argument("--schema")
    cont.add_argument("--max-nodes", type=int, default=6)
    _add_obs_flags(cont)
    cont.set_defaults(func=_cmd_contains)

    translate = commands.add_parser("translate", help="run a paper translation")
    translate.add_argument("expr")
    translate.add_argument("--to", required=True,
                           choices=["eq", "for", "normal-form", "official"])
    translate.set_defaults(func=_cmd_translate)

    simplify = commands.add_parser(
        "simplify", help="print an expression's rewrite-pipeline canonical "
                         "form (per-pass statistics on stderr)")
    simplify.add_argument("expr")
    simplify.add_argument("--passes", choices=["none", "basic", "full"],
                          default="full",
                          help="pipeline level to run (default: full)")
    simplify.add_argument("--schema",
                          help="schema whose labels enable dead-branch "
                               "elimination")
    simplify.set_defaults(func=_cmd_simplify)

    validate = commands.add_parser("validate", help="EDTD conformance")
    validate.add_argument("--schema", required=True)
    validate.add_argument("--doc")
    validate.add_argument("--xml")
    validate.set_defaults(func=_cmd_validate)

    batch = commands.add_parser(
        "batch", help="decide a JSONL stream of problems on a worker pool")
    batch.add_argument(
        "input", metavar="INPUT",
        help="JSONL file of problems ('-' for stdin); each line is an "
             'object like {"kind": "contains", "alpha": "...", "beta": '
             '"..."} or {"kind": "satisfiable", "expr": "..."} with '
             "optional id/max_nodes/engine fields")
    batch.add_argument("--output", metavar="FILE", default=None,
                       help="write JSONL answers to FILE (default: stdout)")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: CPU count, max 8)")
    batch.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-engine-attempt wall-clock timeout; on "
                            "expiry the problem retries on the next-cheapest "
                            "admitted engine")
    batch.add_argument("--race", action="store_true",
                       help="race conclusive admitted engines per problem; "
                            "first conclusive verdict wins")
    batch.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="verdict cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the persistent verdict cache")
    batch.add_argument("--schema", help="schema applied to every problem")
    batch.add_argument("--max-nodes", type=int, default=6)
    batch.add_argument(
        "--server", metavar="ADDRESS", default=None,
        help="send the stream to a running 'repro serve' daemon over its "
             "JSONL socket (a unix socket path or host:port) instead of "
             "spawning a local pool; executor flags (--workers, --race, "
             "--cache-dir, --stats, --trace) are the daemon's and ignored "
             "here, --schema must be configured on the daemon")
    _add_obs_flags(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = commands.add_parser(
        "serve", help="run the containment daemon (HTTP + JSONL socket) "
                      "over a resident executor and verdict cache")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="HTTP port (0 = ephemeral; default: 8642)")
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="also serve the batch JSONL protocol on this "
                            "unix socket (repro batch --server PATH)")
    serve.add_argument("--jsonl-port", type=int, default=None, metavar="PORT",
                       help="serve the JSONL protocol on a TCP port instead "
                            "of a unix socket (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None,
                       help="executor slots (default: CPU count, max 8)")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="default per-engine-attempt timeout (requests "
                            "may override up to --max-timeout)")
    serve.add_argument("--max-timeout", type=float, default=600.0,
                       metavar="S",
                       help="admission cap on per-request timeouts "
                            "(default: 600)")
    serve.add_argument("--race", action="store_true",
                       help="race conclusive admitted engines per problem")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="verdict cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the verdict cache")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       metavar="N",
                       help="bound the disk cache to N entries (GC on "
                            "overflow)")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       metavar="B",
                       help="bound the disk cache to B bytes (GC on "
                            "overflow)")
    serve.add_argument("--schema", help="schema applied to every request")
    serve.add_argument("--passes", choices=["none", "basic", "full"],
                       default="full",
                       help="rewrite-pipeline level the server runs; "
                            "requests asking for another level are "
                            "rejected (default: full)")
    serve.add_argument("--max-nodes", type=int, default=6,
                       help="default search bound per request (default: 6)")
    serve.add_argument("--max-nodes-cap", type=int, default=12, metavar="N",
                       help="admission cap on per-request max_nodes "
                            "(default: 12)")
    serve.add_argument("--engines", action="append", metavar="NAME[,NAME..]",
                       default=None,
                       help="admit only these engines for per-request "
                            "engine forcing (default: all registered)")
    serve.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="shed (429) beyond N concurrently admitted "
                            "requests (default: 64)")
    serve.add_argument("--drain-s", type=float, default=10.0, metavar="S",
                       help="graceful-drain budget on SIGTERM "
                            "(default: 10)")
    serve.set_defaults(func=_cmd_serve)

    cache = commands.add_parser(
        "cache", help="inspect or garbage-collect the verdict cache")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_commands.add_parser(
        "gc", help="delete oldest-mtime entries until the bounds hold")
    cache_gc.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="cache directory (default: $REPRO_CACHE_DIR "
                               "or ~/.cache/repro)")
    cache_gc.add_argument("--max-entries", type=int, default=None,
                          metavar="N", help="keep at most N entries")
    cache_gc.add_argument("--max-bytes", type=int, default=None,
                          metavar="B", help="keep at most B bytes")
    cache_gc.set_defaults(func=_cmd_cache)
    cache_info = cache_commands.add_parser(
        "info", help="print entry/byte totals and tier counters")
    cache_info.add_argument("--cache-dir", metavar="DIR", default=None,
                            help="cache directory (default: "
                                 "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_info.set_defaults(func=_cmd_cache)

    rep = commands.add_parser(
        "report", help="render or gate a BENCH_obs.json perf artifact")
    rep.add_argument(
        "input", metavar="BENCH_OBS",
        help="BENCH_obs.json written by the benchmark harness")
    rep.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="gate against a baseline BENCH_obs.json: duration regressions "
             "and missing instrumentation fail (exit 1), counter drift "
             "only warns")
    rep.add_argument(
        "--fail-on-regression", type=float, default=50.0, metavar="PCT",
        help="relative duration growth that fails the gate "
             "(default: 50%%)")
    rep.add_argument(
        "--min-duration", type=float, default=0.05, metavar="S",
        help="noise floor: tests faster than this on either side never "
             "trip the duration gate (default: 0.05s)")
    rep.add_argument(
        "--require-keys", action="append", metavar="PREFIX[,PREFIX...]",
        help="fail unless each prefix matches some counter/gauge/histogram "
             "key in the artifact (catches silently dropped "
             "instrumentation); repeatable or comma-separated")
    rep.set_defaults(func=_cmd_report)

    show = commands.add_parser("show", help="inspect an expression")
    show.add_argument("expr")
    show.set_defaults(func=_cmd_show)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as error:
        # Parse errors (XPathSyntaxError is a ValueError), bad schema files,
        # unreadable documents, unknown/declining engines: diagnostics
        # belong on stderr, exit code 2.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except Exception as error:  # noqa: BLE001
        # The stream/exit-code contract holds even when a decision engine
        # raises something unexpected mid-solve (a guard like
        # TooManyModalAtoms is a RuntimeError, and --engine NAME re-raises
        # the forced engine's exception verbatim): no tracebacks on the
        # answer stream, diagnostics to stderr, exit 2.
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
