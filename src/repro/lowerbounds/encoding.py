"""Shared conventions for the §6 hardness reductions.

The reductions label multi-labeled tree nodes with machine states, tape
symbols, binary counter bits, and markers.  To keep these namespaces
disjoint regardless of the machine's own naming, labels are prefixed:

* ``q:<state>`` — the head is here in state ``<state>``;
* ``sym:<a>`` — the tape symbol of this cell;
* ``c<i>`` / ``d<i>`` — bit ``i`` of the cell counter ``C`` / the
  configuration counter ``D`` (§6.4);
* ``r`` — configuration-root marker;
* ``m:<M>:<q>`` — the §6.3/§6.4 head markers ``m_{M,q}``.
"""

from __future__ import annotations

from ..xpath.ast import Label, NodeExpr
from ..xpath.builders import and_all, or_all
from .atm import ATM

__all__ = [
    "state_label",
    "symbol_label",
    "c_bit",
    "d_bit",
    "marker_label",
    "ROOT_MARKER",
    "value_equals",
    "some_state",
    "exactly_one_symbol",
    "at_most_one_state",
]

ROOT_MARKER = "r"


def state_label(state: str) -> str:
    return f"q:{state}"


def symbol_label(symbol: str) -> str:
    return f"sym:{symbol}"


def c_bit(i: int) -> str:
    return f"c{i}"


def d_bit(i: int) -> str:
    return f"d{i}"


def marker_label(move: str, state: str) -> str:
    return f"m:{move}:{state}"


def value_equals(value: int, k: int, bit_name=c_bit) -> NodeExpr:
    """``C = value`` as a conjunction over the ``k`` bits (LSB is bit 0)."""
    from ..xpath.ast import Not

    parts: list[NodeExpr] = []
    for i in range(k):
        bit = Label(bit_name(i))
        parts.append(bit if (value >> i) & 1 else Not(bit))
    return and_all(parts)


def some_state(machine: ATM) -> NodeExpr:
    """``⋁_{q ∈ Q} q`` — some head state is on this cell."""
    return or_all([Label(state_label(q)) for q in sorted(machine.states)])


def exactly_one_symbol(machine: ATM) -> NodeExpr:
    """Every cell carries exactly one tape symbol (part of φ_tape)."""
    from ..xpath.ast import Not

    symbols = sorted(machine.work_alphabet)
    options = []
    for a in symbols:
        others = and_all([
            Not(Label(symbol_label(b))) for b in symbols if b != a
        ])
        options.append(and_all([Label(symbol_label(a)), others]))
    return or_all(options)


def at_most_one_state(machine: ATM) -> NodeExpr:
    """No cell carries two distinct head states (part of φ_tape)."""
    from ..xpath.ast import And, Not

    states = sorted(machine.states)
    parts: list[NodeExpr] = []
    for i, q in enumerate(states):
        for q2 in states[i + 1:]:
            parts.append(Not(And(Label(state_label(q)),
                                 Label(state_label(q2)))))
    return and_all(parts)
