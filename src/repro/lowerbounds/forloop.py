"""The non-elementary lower bound for CoreXPath↓(for) (§7, Theorem 31).

A single node variable suffices to express path complementation::

    α − β  ≡  for $i in α return .[¬⟨β[. is $i]⟩]/↓*[. is $i]

``$i`` ranges over the α-targets; the filter discards those also reachable
by β; ``↓*[. is $i]`` then actually travels to ``$i`` (downward expressions
only reach descendants, so ``↓*`` suffices — the general-axes variant uses
``↑*/↓*`` instead).  Hence CoreXPath↓(for) inherits the non-elementary
hardness of CoreXPath↓(−) from Theorem 30.
"""

from __future__ import annotations

from ..xpath.ast import Complement, PathExpr
from ..xpath.measures import axes_used, operators_used
from ..xpath.ast import Axis
from ..xpath.rewrite import complement_via_for

__all__ = ["eliminate_complements", "fresh_variables"]


def fresh_variables(prefix: str = "v"):
    """An endless supply of fresh variable names."""
    counter = 0
    while True:
        yield f"{prefix}{counter}"
        counter += 1


def eliminate_complements(path: PathExpr, downward_only: bool | None = None,
                          _vars=None) -> PathExpr:
    """Rewrite every ``−`` in ``path`` into a one-variable for-loop
    (Theorem 31), bottom-up.  The result is complement-free and equivalent.

    ``downward_only`` selects the paper's ``↓*`` travel (valid when the
    operands are downward); by default it is inferred from the axes used.
    """
    if _vars is None:
        _vars = fresh_variables()
    if downward_only is None:
        downward_only = axes_used(path) <= {Axis.DOWN}

    from ..xpath.rewrite import map_paths

    def transform(sub: PathExpr) -> PathExpr:
        if isinstance(sub, Complement):
            return complement_via_for(sub, var=next(_vars),
                                      downward_only=downward_only)
        return sub

    result = map_paths(path, transform)
    assert "minus" not in operators_used(result)
    return result
