"""The §6/§7 lower-bound machinery: ATMs, hardness reductions, encodings."""

from .atm import (
    ATM,
    Configuration,
    ComputationNode,
    LEFT,
    RIGHT,
    first_symbol_machine,
    parity_machine,
    all_ones_machine,
)
from .vertical import VerticalReduction, vertical_reduction, encode_strategy_tree
from .forward import (
    ForwardReduction,
    forward_reduction,
    encode_strategy_tree_forward,
)
from .downward import (
    DownwardReduction,
    downward_reduction,
    encode_strategy_tree_downward,
)
from .starfree import (
    in_fragment_f,
    starfree_to_path,
    empty_path,
    nonemptiness_as_containment,
)
from .forloop import eliminate_complements, fresh_variables
from .multilabel import encode_formula

__all__ = [
    "ATM", "Configuration", "ComputationNode", "LEFT", "RIGHT",
    "first_symbol_machine", "parity_machine", "all_ones_machine",
    "VerticalReduction", "vertical_reduction", "encode_strategy_tree",
    "ForwardReduction", "forward_reduction", "encode_strategy_tree_forward",
    "DownwardReduction", "downward_reduction", "encode_strategy_tree_downward",
    "in_fragment_f", "starfree_to_path", "empty_path",
    "nonemptiness_as_containment",
    "eliminate_complements", "fresh_variables",
    "encode_formula",
]
