"""The non-elementary lower bound for CoreXPath(−) (§7, Theorem 30).

The fragment ``F`` allows only ``↓[p] | ↓* | α/β | α − β``.  Star-free
expression nonemptiness — non-elementary by Stockmeyer — reduces to
containment in ``F``: ``tr(r)`` relates ``n`` to ``m`` iff the labels along
the strict downward path from ``n`` to ``m`` spell a word of ``L(r)``, so
``L(r) ≠ ∅`` iff ``tr(r)`` is *not* contained in the empty relation
``↓* − ↓*``.

One repair to the paper's construction: it sets ``tr(−r) = ↓⁺ − tr(r)``,
whose universe misses the length-0 path, so ``ε ∈ L(−r)`` is lost — and a
language like ``{ε}`` (definable as ``−((a ∪ −a)·(−∅))``-style) would be
mapped to an empty relation, breaking the nonemptiness equivalence.  We use
``tr(−r) = ↓* − tr(r)``, which makes the word/path correspondence exact for
*all* words including ε (and stays within the fragment ``F``).
"""

from __future__ import annotations

from ..regexes.starfree import (
    SFComplement,
    SFConcat,
    SFSymbol,
    SFUnion,
    StarFree,
)
from ..xpath.ast import (
    AxisClosure,
    Axis,
    AxisStep,
    Complement,
    Filter,
    Label,
    PathExpr,
    Seq,
    Top,
)

__all__ = [
    "in_fragment_f",
    "starfree_to_path",
    "empty_path",
    "nonemptiness_as_containment",
]

_DOWN = AxisStep(Axis.DOWN)
_DOWN_STAR = AxisClosure(Axis.DOWN)
#: ``↓⁺`` as the fragment allows it: ``↓[⊤]/↓*``.
_DOWN_PLUS = Seq(Filter(_DOWN, Top()), _DOWN_STAR)


def in_fragment_f(path: PathExpr) -> bool:
    """Is ``path`` in the fragment ``F`` of Theorem 30?
    (``↓[p] | ↓* | α/β | α − β``, with ``∪``/``∩`` as derived operators —
    we check the primitive grammar here.)"""
    match path:
        case AxisClosure(axis=Axis.DOWN):
            return True
        case Filter(path=AxisStep(axis=Axis.DOWN), predicate=Label() | Top()):
            return True
        case Seq(left=a, right=b) | Complement(left=a, right=b):
            return in_fragment_f(a) and in_fragment_f(b)
    return False


def _union(left: PathExpr, right: PathExpr) -> PathExpr:
    """``α ∪ β`` within F: ``↓* − ((↓* − α) ∩ (↓* − β))`` where the inner
    intersection is itself ``γ − (γ − δ)`` (proof of Theorem 30).

    Note: complementation in the reduction is always relative to ``↓⁺``-like
    relations, for which ``↓*`` is a superset, so the relative complement
    through ``↓*`` computes the true union.
    """
    not_left = Complement(_DOWN_STAR, left)
    not_right = Complement(_DOWN_STAR, right)
    meet = Complement(not_left, Complement(not_left, not_right))
    return Complement(_DOWN_STAR, meet)


def starfree_to_path(expr: StarFree) -> PathExpr:
    """``tr(r)`` from the proof of Theorem 30:

    * ``tr(a) = ↓[a]``
    * ``tr(r s) = tr(r)/tr(s)``
    * ``tr(r ∪ s) = tr(r) ∪ tr(s)`` (expanded via ``−``)
    * ``tr(−r) = ↓* − tr(r)`` (see the module docstring on the ε repair)
    """
    match expr:
        case SFSymbol(name=name):
            return Filter(_DOWN, Label(name))
        case SFConcat(left=a, right=b):
            return Seq(starfree_to_path(a), starfree_to_path(b))
        case SFUnion(left=a, right=b):
            return _union(starfree_to_path(a), starfree_to_path(b))
        case SFComplement(inner=a):
            return Complement(_DOWN_STAR, starfree_to_path(a))
    raise TypeError(f"unknown star-free expression {expr!r}")


def empty_path() -> PathExpr:
    """``↓* − ↓*`` — the empty relation, the right-hand side of the
    containment in Theorem 30."""
    return Complement(_DOWN_STAR, _DOWN_STAR)


def nonemptiness_as_containment(expr: StarFree) -> tuple[PathExpr, PathExpr]:
    """``L(r) ≠ ∅`` iff the first path is **not** contained in the second."""
    return starfree_to_path(expr), empty_path()
