"""The 2-EXPTIME-hardness reduction for CoreXPath↓↑(∩) (§6.2, Theorem 27).

Reduces the word problem of an exponentially space-bounded ATM to node
satisfiability: ``w ∈ L(M)`` iff ``φ_{M,w}`` is satisfiable over
multi-labeled trees.  Configurations are the depth-``k`` leaves of binary
"triangle" trees hanging below ``r``-marked roots (Figure 3); a binary
counter ``C`` over bits ``c_0 … c_{k-1}`` identifies the ``2^k`` tape cells,
and path intersection synchronizes counter values across configurations.

Besides the formula, :func:`encode_strategy_tree` builds the multi-labeled
tree that encodes an actual computation of the machine — the model the
correctness argument constructs — so tests can check
``M accepts w ⟺ φ_{M,w} holds on the encoding``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import Filter, Intersect, Label, NodeExpr, Not, PathExpr, Self, SomePath
from ..xpath.builders import (
    and_all,
    down,
    down_star,
    every,
    implies,
    or_all,
    repeat,
    up,
)
from .atm import ATM, ComputationNode, LEFT, RIGHT
from .encoding import (
    ROOT_MARKER,
    at_most_one_state,
    c_bit,
    exactly_one_symbol,
    some_state,
    state_label,
    symbol_label,
    value_equals,
)

__all__ = ["VerticalReduction", "vertical_reduction", "encode_strategy_tree"]


def _intersect_all(paths: list[PathExpr]) -> PathExpr:
    if not paths:
        raise ValueError("empty intersection")
    result = paths[0]
    for path in paths[1:]:
        result = Intersect(result, path)
    return result


@dataclass(frozen=True)
class VerticalReduction:
    """``φ_{M,w}`` together with its ingredients, for inspection."""

    machine: ATM
    word: tuple[str, ...]
    k: int
    formula: NodeExpr
    conjuncts: dict[str, NodeExpr]


def vertical_reduction(machine: ATM, word: str | tuple[str, ...]) -> VerticalReduction:
    """Build ``φ_{M,w}`` (§6.2) for an input word of length ``k ≥ 1``;
    configurations then have ``2^k`` tape cells."""
    word = tuple(word)
    k = len(word)
    if k < 1:
        raise ValueError("the reduction needs a nonempty input word")

    marker = Label(ROOT_MARKER)
    # Navigation (§6.2): roots, cells, same-configuration and
    # successor-configuration travel.
    a_root: PathExpr = down_star[marker]
    a_cell: PathExpr = a_root / repeat(down, k)
    a_cur: PathExpr = repeat(up, k) / repeat(down, k)
    a_nxt: PathExpr = (repeat(up, k + 1) / down[Not(marker)]
                       / down[marker] / repeat(down, k))

    def bit(i: int) -> NodeExpr:
        return Label(c_bit(i))

    def eq_i(i: int, travel: PathExpr) -> PathExpr:
        return (Filter(Self(), bit(i)) / travel[bit(i)]) | \
               (Filter(Self(), Not(bit(i))) / travel[Not(bit(i))])

    def neq_i(i: int, travel: PathExpr) -> PathExpr:
        return (Filter(Self(), bit(i)) / travel[Not(bit(i))]) | \
               (Filter(Self(), Not(bit(i))) / travel[bit(i)])

    a_eq_cur = _intersect_all([eq_i(i, a_cur) for i in range(k)])
    a_neq_cur = or_all_paths([neq_i(i, a_cur) for i in range(k)])
    a_eq_nxt = _intersect_all([eq_i(i, a_nxt) for i in range(k)])

    def stepped(direction: str) -> PathExpr:
        """α_Rcur / α_Lcur: same configuration, cell index ±1."""
        parts = []
        for i in range(k):
            if direction == RIGHT:
                carry = and_all([bit(j) for j in range(i)])
                no_carry = or_all([Not(bit(j)) for j in range(i)])
            else:
                carry = and_all([Not(bit(j)) for j in range(i)])
                no_carry = or_all([bit(j) for j in range(i)])
            flip = Filter(Self(), carry) / neq_i(i, a_cur)
            keep = Filter(Self(), no_carry) / eq_i(i, a_cur)
            parts.append(flip | keep)
        return _intersect_all(parts)

    a_rcur = stepped(RIGHT)
    a_lcur = stepped(LEFT)

    states = sorted(machine.states)
    symbols = sorted(machine.work_alphabet)
    cell_labels = [symbol_label(a) for a in symbols] + [state_label(q) for q in states]

    # φ_conf: below every r node, a depth-k binary tree realizing every
    # counter value, with bit i fixed for the whole subtree at level i.
    conf = and_all([
        every(
            a_root / repeat(down, i),
            and_all([
                SomePath(down[and_all([bit(i), every(down_star, bit(i))])]),
                SomePath(down[and_all([Not(bit(i)),
                                       every(down_star, Not(bit(i)))])]),
            ]),
        )
        for i in range(k)
    ])

    # φ_uni: cells of a configuration with equal counter values agree on all
    # symbol and state labels.
    uni = every(a_cell, and_all([
        and_all([
            implies(Label(a), every(a_eq_cur, Label(a))),
            implies(Not(Label(a)), every(a_eq_cur, Not(Label(a)))),
        ])
        for a in cell_labels
    ]))

    # φ_tape: symbol uniqueness plus the initial configuration (reachable by
    # ↓[r] from the evaluation node): w on the first k cells, blanks after,
    # head in the initial state on cell 0.
    initial_cell = down[marker] / repeat(down, k)
    within_word = or_all([value_equals(j, k) for j in range(k)])
    initial = every(initial_cell, and_all([
        *[
            implies(value_equals(j, k), Label(symbol_label(word[j])))
            for j in range(k)
        ],
        implies(Not(within_word), Label(symbol_label(machine.blank))),
        implies(value_equals(0, k), Label(state_label(machine.initial))),
        implies(Not(value_equals(0, k)), Not(some_state(machine))),
    ]))
    tape = and_all([
        every(a_cell, exactly_one_symbol(machine)),
        every(a_cell, at_most_one_state(machine)),
        initial,
    ])

    # φ_head: at most one head per configuration.
    head = every(a_cell, and_all([
        implies(Label(state_label(q)), every(a_neq_cur, Not(Label(state_label(q2)))))
        for q in states for q2 in states
    ]))

    # φ_id: cells away from the head keep their symbol in the successor.
    ident = every(a_cell, and_all([
        implies(and_all([Label(symbol_label(a)), Not(some_state(machine))]),
                every(a_eq_nxt, Label(symbol_label(a))))
        for a in symbols
    ]))

    # φ_Δ: transitions.  Existential heads pick one transition; universal
    # heads require all of them, each witnessed in some successor
    # configuration with the written symbol and the moved head.
    def transition_witness(p: str, b: str, move: str) -> NodeExpr:
        travel = a_rcur if move == RIGHT else a_lcur
        return SomePath(Filter(a_eq_nxt, and_all([
            Label(symbol_label(b)),
            every(travel, Label(state_label(p))),
        ])))

    delta_parts: list[NodeExpr] = []
    for q in sorted(machine.existential | machine.universal):
        for a in symbols:
            options = [transition_witness(p, b, move)
                       for (p, b, move) in machine.moves(q, a)]
            trigger = and_all([Label(state_label(q)), Label(symbol_label(a))])
            if q in machine.existential:
                delta_parts.append(implies(trigger, or_all(options)))
            else:
                delta_parts.append(implies(trigger, and_all(options)))
    delta = every(a_cell, and_all(delta_parts))

    # φ_acc: the rejecting state never occurs (computations are finite).
    acc = every(a_cell, Not(Label(state_label(machine.rejecting))))

    conjuncts = {
        "conf": conf, "uni": uni, "tape": tape, "head": head,
        "id": ident, "delta": delta, "acc": acc,
    }
    formula = and_all(list(conjuncts.values()))
    return VerticalReduction(machine, word, k, formula, conjuncts)


def or_all_paths(paths: list[PathExpr]) -> PathExpr:
    if not paths:
        raise ValueError("empty union")
    result = paths[0]
    for path in paths[1:]:
        result = result | path
    return result


# --------------------------------------------------------------- the model


def encode_strategy_tree(machine: ATM, word: str | tuple[str, ...]) -> MultiLabelTree:
    """The intended model of ``φ_{M,w}``: the machine's strategy tree laid
    out as in Figure 3.  If the machine accepts, the formula holds at the
    root of this tree; if it rejects, φ_acc fails on it."""
    word = tuple(word)
    k = len(word)
    tape_length = 2 ** k
    computation = machine.strategy_tree(word, tape_length)

    labelsets: list[set[str]] = []
    parents: list[int | None] = []

    def new_node(labels: set[str], parent: int | None) -> int:
        labelsets.append(labels)
        parents.append(parent)
        return len(labelsets) - 1

    def attach(parent: int, node: ComputationNode) -> None:
        root = new_node({ROOT_MARKER}, parent)
        _triangle_from_root(root, node.configuration)
        for successor in node.children:
            intermediate = new_node(set(), parent)
            attach(intermediate, successor)

    def _triangle_from_root(root: int, config) -> None:
        if k == 0:
            raise ValueError("k must be >= 1")
        state, tape, head = config

        def grow(parent: int, depth: int, prefix: int) -> None:
            if depth == k:
                # parent is already the cell node.
                return
            for value in (0, 1):
                child_prefix = prefix | (value << depth)
                labels = {c_bit(i) for i in range(depth + 1)
                          if (child_prefix >> i) & 1}
                if depth + 1 == k:
                    labels.add(symbol_label(tape[child_prefix]))
                    if head == child_prefix:
                        labels.add(state_label(state))
                child = new_node(labels, parent)
                grow(child, depth + 1, child_prefix)

        grow(root, 0, 0)

    global_root = new_node(set(), None)
    attach(global_root, computation)
    skeleton = XMLTree([""] * len(labelsets), parents)
    return MultiLabelTree(skeleton, [frozenset(ls) for ls in labelsets])
