"""The 2-EXPTIME-hardness reduction for CoreXPath↓→(∩) (§6.3, Theorem 28).

Same exponentially space-bounded ATM word problem as §6.2, but without
upward axes: a configuration is a *horizontal* sequence of ``2^k`` cell
siblings below an ``r``-marked node (Figure 4), followed (to the right) by
the ``r``-marked roots of its successor configurations.  Since one cannot
travel up or left, the head markers ``m_{M,q}`` carry "the head moves
here" information to where it can be checked by looking right only
(``φ'_mark``).

One repair to the source text: the third conjunct of ``φ'_conf`` is printed
as ``every(α'_cell, ⊥)`` in the article, which would be vacuously false; the
intended constraint in context is that cell nodes are leaves, i.e.
``every(α'_cell/↓, ⊥)``, which is what we implement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import (
    Filter,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathExpr,
    Self,
    SomePath,
)
from ..xpath.builders import (
    and_all,
    bottom,
    down,
    down_star,
    every,
    implies,
    or_all,
    right_plus,
)
from .atm import ATM, ComputationNode, LEFT, RIGHT
from .encoding import (
    ROOT_MARKER,
    at_most_one_state,
    c_bit,
    exactly_one_symbol,
    marker_label,
    some_state,
    state_label,
    symbol_label,
    value_equals,
)

__all__ = ["ForwardReduction", "forward_reduction", "encode_strategy_tree_forward"]


@dataclass(frozen=True)
class ForwardReduction:
    """``φ'_{M,w}`` together with its ingredients."""

    machine: ATM
    word: tuple[str, ...]
    k: int
    formula: NodeExpr
    conjuncts: dict[str, NodeExpr]


def _intersect_all(paths: list[PathExpr]) -> PathExpr:
    result = paths[0]
    for path in paths[1:]:
        result = Intersect(result, path)
    return result


def _union_all(paths: list[PathExpr]) -> PathExpr:
    result = paths[0]
    for path in paths[1:]:
        result = result | path
    return result


def forward_reduction(machine: ATM, word: str | tuple[str, ...]) -> ForwardReduction:
    """Build ``φ'_{M,w}`` (§6.3)."""
    word = tuple(word)
    k = len(word)
    if k < 1:
        raise ValueError("the reduction needs a nonempty input word")

    marker = Label(ROOT_MARKER)
    a_root: PathExpr = down_star[marker]
    a_cell: PathExpr = down_star[Not(marker)]
    # The source's α'_nxt = →+[r]/↓ and α'_>cur = →+ are restricted to
    # ¬r endpoints here: configuration roots carry no counter bits, so they
    # would otherwise masquerade as C = 0 cells in the bitwise-equality
    # intersections.
    a_nxt: PathExpr = right_plus[marker] / down[Not(marker)]
    a_gtcur: PathExpr = right_plus[Not(marker)]

    def bit(i: int) -> NodeExpr:
        return Label(c_bit(i))

    def eq_i(i: int, travel: PathExpr) -> PathExpr:
        return (Filter(Self(), bit(i)) / travel[bit(i)]) | \
               (Filter(Self(), Not(bit(i))) / travel[Not(bit(i))])

    def neq_i(i: int, travel: PathExpr) -> PathExpr:
        return (Filter(Self(), bit(i)) / travel[Not(bit(i))]) | \
               (Filter(Self(), Not(bit(i))) / travel[bit(i)])

    a_eq_cur = _intersect_all([eq_i(i, a_gtcur) for i in range(k)])
    a_neq_cur = _union_all([neq_i(i, a_gtcur) for i in range(k)])
    a_eq_nxt = _intersect_all([eq_i(i, a_nxt) for i in range(k)])

    def a_rcur() -> PathExpr:
        parts = []
        for i in range(k):
            carry = and_all([bit(j) for j in range(i)])
            no_carry = or_all([Not(bit(j)) for j in range(i)])
            flip = Filter(Self(), carry) / neq_i(i, a_gtcur)
            keep = Filter(Self(), no_carry) / eq_i(i, a_gtcur)
            parts.append(flip | keep)
        return _intersect_all(parts)

    rcur = a_rcur()

    states = sorted(machine.states)
    symbols = sorted(machine.work_alphabet)
    cell_labels = [symbol_label(a) for a in symbols] + \
        [state_label(q) for q in states] + \
        [marker_label(move, q) for move in (LEFT, RIGHT) for q in states]

    max_value = and_all([bit(i) for i in range(k)])

    # φ'_conf: counters along sibling sequences.
    conf = and_all([
        # Every configuration root has a C = 0 cell child.
        every(a_root, SomePath(down[and_all(
            [Not(bit(i)) for i in range(k)] + [Not(marker)]
        )])),
        # Every non-maximal cell has a C+1 cell to its right.
        every(a_cell, implies(Not(max_value), SomePath(Filter(rcur, Not(marker))))),
        # Cells are leaves (see the module docstring on the source typo).
        every(a_cell / down, bottom),
        # After the first r child, everything to the right is r-marked:
        # cells first, then the successor-configuration roots.
        every(a_root / down[marker] / right_plus, marker),
    ])

    uni = every(a_cell, and_all([
        and_all([
            implies(Label(a), every(a_eq_cur, Label(a))),
            implies(Not(Label(a)), every(a_eq_cur, Not(Label(a)))),
        ])
        for a in cell_labels
    ]))

    within_word = or_all([value_equals(j, k) for j in range(k)])
    initial = every(down[Not(marker)], and_all([
        *[
            implies(value_equals(j, k), Label(symbol_label(word[j])))
            for j in range(k)
        ],
        implies(Not(within_word), Label(symbol_label(machine.blank))),
        implies(value_equals(0, k), Label(state_label(machine.initial))),
        implies(Not(value_equals(0, k)), Not(some_state(machine))),
    ]))
    tape = and_all([
        every(a_cell, exactly_one_symbol(machine)),
        every(a_cell, at_most_one_state(machine)),
        initial,
    ])

    head = every(a_cell, and_all([
        implies(Label(state_label(q)),
                every(a_neq_cur, Not(Label(state_label(q2)))))
        for q in states for q2 in states
    ]))

    ident = every(a_cell, and_all([
        implies(and_all([Label(symbol_label(a)), Not(some_state(machine))]),
                every(a_eq_nxt, Label(symbol_label(a))))
        for a in symbols
    ]))

    def transition_witness(p: str, b: str, move: str) -> NodeExpr:
        return SomePath(Filter(a_eq_nxt, and_all([
            Label(symbol_label(b)),
            Label(marker_label(move, p)),
        ])))

    delta_parts: list[NodeExpr] = []
    for q in sorted(machine.existential | machine.universal):
        for a in symbols:
            options = [transition_witness(p, b, move)
                       for (p, b, move) in machine.moves(q, a)]
            trigger = and_all([Label(state_label(q)), Label(symbol_label(a))])
            if q in machine.existential:
                delta_parts.append(implies(trigger, or_all(options)))
            else:
                delta_parts.append(implies(trigger, and_all(options)))
    delta = every(a_cell, and_all(delta_parts))

    # φ'_mark: the markers mean what they should, checked rightward only:
    # a right neighbor marked m_{L,q} puts the head (state q) here; m_{R,q}
    # here puts the head on the right neighbor.
    mark = every(a_cell, and_all([
        and_all([
            implies(SomePath(Filter(rcur, Label(marker_label(LEFT, q)))),
                    Label(state_label(q))),
            implies(Label(marker_label(RIGHT, q)),
                    SomePath(Filter(rcur, Label(state_label(q))))),
        ])
        for q in states
    ]))

    acc = every(a_cell, Not(Label(state_label(machine.rejecting))))

    conjuncts = {
        "conf": conf, "uni": uni, "tape": tape, "head": head,
        "id": ident, "delta": delta, "mark": mark, "acc": acc,
    }
    formula = and_all(list(conjuncts.values()))
    return ForwardReduction(machine, word, k, formula, conjuncts)


def encode_strategy_tree_forward(machine: ATM,
                                 word: str | tuple[str, ...]) -> MultiLabelTree:
    """The intended model of ``φ'_{M,w}`` (Figure 4): each configuration is
    a run of ``2^k`` cell siblings; successor configurations follow as
    ``r``-marked siblings to the right, one per alternation branch."""
    word = tuple(word)
    k = len(word)
    tape_length = 2 ** k
    computation = machine.strategy_tree(word, tape_length)

    labelsets: list[set[str]] = []
    parents: list[int | None] = []

    def new_node(labels: set[str], parent: int | None) -> int:
        labelsets.append(labels)
        parents.append(parent)
        return len(labelsets) - 1

    def cell_labels(node: ComputationNode, index: int) -> set[str]:
        state, tape, head = node.configuration
        labels = {c_bit(i) for i in range(k) if (index >> i) & 1}
        labels.add(symbol_label(tape[index]))
        if head == index:
            labels.add(state_label(state))
        # Head markers describe each *child* configuration: cell `index` of
        # the successor is marked m_{M,q} if the head moved M-wards into its
        # neighborhood — i.e. the successor head sits at index∓1 … the §6.3
        # convention: the successor's head cell's M-opposite neighbor…
        return labels

    def attach_config(parent: int, node: ComputationNode,
                      markers: dict[int, str]) -> None:
        """Emit the 2^k cells of this configuration (with the given head
        markers) and then, as right siblings, its successor configurations."""
        for index in range(tape_length):
            labels = cell_labels(node, index)
            if index in markers:
                labels.add(markers[index])
            new_node(labels, parent)
        for successor in node.children:
            config_root = new_node({ROOT_MARKER}, parent)
            attach_config(config_root, successor,
                          _markers_for(node, successor))
        # Note: preorder numbering is preserved because each successor's
        # whole subtree is emitted before the next sibling root.

    def _markers_for(parent_node: ComputationNode,
                     child: ComputationNode) -> dict[int, str]:
        """m_{M,q} on the successor's written cell: the head of the parent
        was at `h`; the transition moved M and entered q, so the successor
        carries the marker at cell `h` (the cell that was written)."""
        parent_head = parent_node.configuration[2]
        child_state, _, child_head = child.configuration
        move = RIGHT if child_head > parent_head else LEFT
        return {parent_head: marker_label(move, child_state)}

    global_root = new_node({ROOT_MARKER}, None)
    attach_config(global_root, computation, {})
    skeleton = XMLTree([""] * len(labelsets), parents)
    return MultiLabelTree(skeleton, [frozenset(ls) for ls in labelsets])
