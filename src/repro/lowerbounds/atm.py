"""Alternating Turing machines (§6.1).

An ATM ``M = (Q, Λ, Γ, q₀, Δ)`` has states partitioned into existential and
universal ones plus one accepting and one rejecting state.  Acceptance of
ATMs with finite computations is the usual AND/OR evaluation over the
configuration graph [Chandra, Kozen & Stockmeyer 1981].

Machines here run on a fixed-length tape (the space bound ``2^k`` of the
§6.2/§6.4 reductions); a configuration is ``(state, tape, head)``.  The
hardness reductions assume machines never move off either tape end and have
only finite computations — :func:`ATM.accepts` enforces both with explicit
errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "ATM",
    "Configuration",
    "LEFT",
    "RIGHT",
    "first_symbol_machine",
    "parity_machine",
    "all_ones_machine",
]

LEFT = "L"
RIGHT = "R"

#: ``(state, tape, head)``.
Configuration = tuple[str, tuple[str, ...], int]


@dataclass(frozen=True)
class ATM:
    """An alternating Turing machine.

    ``transitions`` contains tuples ``(q, a, q', b, M)``: in state ``q``
    reading ``a``, write ``b``, enter ``q'``, move ``M ∈ {L, R}``.
    """

    existential: frozenset[str]
    universal: frozenset[str]
    accepting: str
    rejecting: str
    initial: str
    input_alphabet: frozenset[str]
    work_alphabet: frozenset[str]
    blank: str
    transitions: frozenset[tuple[str, str, str, str, str]]

    def __post_init__(self) -> None:
        if self.existential & self.universal:
            raise ValueError("existential and universal states must be disjoint")
        control = self.existential | self.universal
        if self.accepting in control or self.rejecting in control:
            raise ValueError("halting states must not be existential/universal")
        if self.initial not in control:
            raise ValueError("the initial state must be existential or universal")
        if self.blank not in self.work_alphabet:
            raise ValueError("the blank symbol must be in the work alphabet")
        if not self.input_alphabet <= self.work_alphabet:
            raise ValueError("the input alphabet must be within the work alphabet")
        for q, a, q2, b, move in self.transitions:
            if q not in control:
                raise ValueError(f"transition from halting state {q!r}")
            if q2 not in self.states:
                raise ValueError(f"transition into unknown state {q2!r}")
            if a not in self.work_alphabet or b not in self.work_alphabet:
                raise ValueError("transition symbols must be in the work alphabet")
            if move not in (LEFT, RIGHT):
                raise ValueError(f"bad move {move!r}")

    @property
    def states(self) -> frozenset[str]:
        return (self.existential | self.universal
                | {self.accepting, self.rejecting})

    def moves(self, state: str, symbol: str) -> list[tuple[str, str, str]]:
        """``Δ(q, a)``: the applicable ``(q', b, M)`` triples, sorted."""
        return sorted(
            (q2, b, move)
            for (q, a, q2, b, move) in self.transitions
            if q == state and a == symbol
        )

    # --------------------------------------------------------------- running

    def initial_configuration(self, word: Iterable[str],
                              tape_length: int) -> Configuration:
        word = list(word)
        if len(word) > tape_length:
            raise ValueError("word longer than the tape")
        if not set(word) <= self.input_alphabet:
            raise ValueError("word uses symbols outside the input alphabet")
        tape = tuple(word) + (self.blank,) * (tape_length - len(word))
        return (self.initial, tape, 0)

    def successors(self, config: Configuration) -> list[Configuration]:
        state, tape, head = config
        if state in (self.accepting, self.rejecting):
            return []
        result = []
        for q2, b, move in self.moves(state, tape[head]):
            new_tape = tape[:head] + (b,) + tape[head + 1:]
            new_head = head - 1 if move == LEFT else head + 1
            if not 0 <= new_head < len(tape):
                raise ValueError(
                    f"machine moved off the tape at {config!r}; the reductions "
                    "assume the space bound is respected"
                )
            result.append((q2, new_tape, new_head))
        return result

    def accepts(self, word: Iterable[str], tape_length: int,
                max_configurations: int = 100_000) -> bool:
        """AND/OR evaluation over the configuration graph.

        Raises if a configuration repeats along a branch (the reductions
        assume finite computations) or the exploration budget is exceeded.
        """
        memo: dict[Configuration, bool] = {}
        on_stack: set[Configuration] = set()

        def evaluate(config: Configuration) -> bool:
            if config in memo:
                return memo[config]
            if config in on_stack:
                raise ValueError("infinite computation (configuration cycle)")
            if len(memo) > max_configurations:
                raise ValueError("configuration budget exceeded")
            state = config[0]
            if state == self.accepting:
                value = True
            elif state == self.rejecting:
                value = False
            else:
                on_stack.add(config)
                succs = self.successors(config)
                if not succs:
                    raise ValueError(
                        f"control state {state!r} has no applicable transition; "
                        "make halting explicit via the accepting/rejecting states"
                    )
                if state in self.existential:
                    value = any(evaluate(s) for s in succs)
                else:
                    value = all(evaluate(s) for s in succs)
                on_stack.discard(config)
            memo[config] = value
            return value

        return evaluate(self.initial_configuration(word, tape_length))

    def strategy_tree(self, word: Iterable[str], tape_length: int) -> "ComputationNode":
        """The computation tree used by the reduction tests: universal
        configurations keep all successors; existential ones keep a single
        accepting successor if any, else their first successor."""
        memo: dict[Configuration, bool] = {}

        def accepting_from(config: Configuration) -> bool:
            if config in memo:
                return memo[config]
            state = config[0]
            if state == self.accepting:
                value = True
            elif state == self.rejecting:
                value = False
            else:
                memo[config] = False  # cycle guard (machines are finite anyway)
                succs = self.successors(config)
                if state in self.existential:
                    value = any(accepting_from(s) for s in succs)
                else:
                    value = all(accepting_from(s) for s in succs)
            memo[config] = value
            return value

        def build(config: Configuration) -> ComputationNode:
            state = config[0]
            if state in (self.accepting, self.rejecting):
                return ComputationNode(config, ())
            succs = self.successors(config)
            if state in self.existential:
                chosen = next(
                    (s for s in succs if accepting_from(s)), succs[0]
                )
                return ComputationNode(config, (build(chosen),))
            return ComputationNode(config, tuple(build(s) for s in succs))

        return build(self.initial_configuration(word, tape_length))


@dataclass(frozen=True)
class ComputationNode:
    """A node of a computation (strategy) tree."""

    configuration: Configuration
    children: tuple["ComputationNode", ...]

    def contains_state(self, state: str) -> bool:
        if self.configuration[0] == state:
            return True
        return any(child.contains_state(state) for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


# --------------------------------------------------------- example machines


def first_symbol_machine() -> ATM:
    """Accepts words whose first symbol is ``a`` (purely existential)."""
    return ATM(
        existential=frozenset({"q0"}),
        universal=frozenset(),
        accepting="qa",
        rejecting="qr",
        initial="q0",
        input_alphabet=frozenset({"a", "b"}),
        work_alphabet=frozenset({"a", "b", "_"}),
        blank="_",
        transitions=frozenset({
            ("q0", "a", "qa", "a", RIGHT),
            ("q0", "b", "qr", "b", RIGHT),
            ("q0", "_", "qr", "_", RIGHT),
        }),
    )


def all_ones_machine() -> ATM:
    """Accepts words over {0,1} (padded by blanks) containing no ``0``:
    walks right universally branching on "check here" vs "continue"."""
    return ATM(
        existential=frozenset(),
        universal=frozenset({"q0"}),
        accepting="qa",
        rejecting="qr",
        initial="q0",
        input_alphabet=frozenset({"0", "1"}),
        work_alphabet=frozenset({"0", "1", "_"}),
        blank="_",
        transitions=frozenset({
            ("q0", "1", "q0", "1", RIGHT),
            ("q0", "1", "qa", "1", RIGHT),
            ("q0", "0", "qr", "0", RIGHT),
            ("q0", "_", "qa", "_", LEFT),
        }),
    )


def parity_machine() -> ATM:
    """Accepts words over {0,1} with an even number of ``1``-s — a
    deterministic two-state machine exercising state changes and writes."""
    return ATM(
        existential=frozenset({"even", "odd"}),
        universal=frozenset(),
        accepting="qa",
        rejecting="qr",
        initial="even",
        input_alphabet=frozenset({"0", "1"}),
        work_alphabet=frozenset({"0", "1", "_"}),
        blank="_",
        transitions=frozenset({
            ("even", "0", "even", "0", RIGHT),
            ("even", "1", "odd", "1", RIGHT),
            ("odd", "0", "odd", "0", RIGHT),
            ("odd", "1", "even", "1", RIGHT),
            ("even", "_", "qa", "_", LEFT),
            ("odd", "_", "qr", "_", LEFT),
        }),
    )
