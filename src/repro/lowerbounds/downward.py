"""The EXPSPACE-hardness reduction for CoreXPath↓(∩) (§6.4, Theorem 29).

Reduces the word problem of an exponentially *time*-bounded ATM: with only
the downward axes available, a computation is laid out as downward chains of
cells (Figure 5).  Two binary counters identify positions: ``C`` (bits
``c_i``) numbers the ``2^k`` cells within a configuration and ``D`` (bits
``d_i``) numbers the ``2^k`` configurations along a branch.  Head moves are
communicated by the ``m_{M,q}`` markers checked against the ``↓`` child (the
§6.3 trick with ``α'_Rcur`` replaced by ``↓``).

Chains run until both counters are maximal, so computations are padded with
head-less copy configurations after halting; ``φ''_acc`` forbids the
rejecting state anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees import MultiLabelTree, XMLTree
from ..xpath.ast import (
    Filter,
    Intersect,
    Label,
    NodeExpr,
    Not,
    PathExpr,
    Self,
    SomePath,
)
from ..xpath.builders import and_all, down, down_star, every, implies, or_all
from .atm import ATM, ComputationNode, LEFT, RIGHT
from .encoding import (
    at_most_one_state,
    c_bit,
    d_bit,
    exactly_one_symbol,
    marker_label,
    some_state,
    state_label,
    symbol_label,
    value_equals,
)

__all__ = ["DownwardReduction", "downward_reduction", "encode_strategy_tree_downward"]


@dataclass(frozen=True)
class DownwardReduction:
    """``φ''_{M',w}`` together with its ingredients."""

    machine: ATM
    word: tuple[str, ...]
    k: int
    formula: NodeExpr
    conjuncts: dict[str, NodeExpr]


def _intersect_all(paths: list[PathExpr]) -> PathExpr:
    result = paths[0]
    for path in paths[1:]:
        result = Intersect(result, path)
    return result


def downward_reduction(machine: ATM, word: str | tuple[str, ...]) -> DownwardReduction:
    """Build ``φ''_{M',w}`` (§6.4): satisfiable iff the exponentially
    time-bounded machine accepts ``w`` within ``2^k`` steps on ``2^k`` cells,
    where ``k = |w|``."""
    word = tuple(word)
    k = len(word)
    if k < 1:
        raise ValueError("the reduction needs a nonempty input word")

    def cbit(i: int) -> NodeExpr:
        return Label(c_bit(i))

    def dbit(i: int) -> NodeExpr:
        return Label(d_bit(i))

    a_cell: PathExpr = down_star

    def eq_i(test: NodeExpr, travel: PathExpr) -> PathExpr:
        return (Filter(Self(), test) / travel[test]) | \
               (Filter(Self(), Not(test)) / travel[Not(test)])

    # α''_>cur: strictly-below cells of the same configuration (equal D).
    down_plus_path: PathExpr = down / down_star
    a_gtcur = _intersect_all(
        [down_plus_path, *[eq_i(dbit(i), down_plus_path) for i in range(k)]]
    )

    # α''_nxt: descend to the next configuration (D+1), any cell.
    def d_increment_parts(travel: PathExpr) -> list[PathExpr]:
        parts = []
        for i in range(k):
            carry = and_all([dbit(j) for j in range(i)])
            no_carry = or_all([Not(dbit(j)) for j in range(i)])
            flip = Filter(Self(), carry) / (
                (Filter(Self(), dbit(i)) / travel[Not(dbit(i))])
                | (Filter(Self(), Not(dbit(i))) / travel[dbit(i)])
            )
            keep = Filter(Self(), no_carry) / eq_i(dbit(i), travel)
            parts.append(flip | keep)
        return parts

    a_nxt = _intersect_all([down_star, *d_increment_parts(down_star)])

    # α''_=nxt: next configuration, same cell (equal C on top of D+1).
    a_eq_nxt = _intersect_all(
        [eq_i(cbit(i), a_nxt) for i in range(k)]
    )

    states = sorted(machine.states)
    symbols = sorted(machine.work_alphabet)

    max_c = and_all([cbit(i) for i in range(k)])
    max_d = and_all([dbit(i) for i in range(k)])

    # φ''_conf: the counters along the chain.  The evaluation node is the
    # chain's first cell: C = 0, D = 0; every non-final cell has a child;
    # children increment C (mod 2^k) and increment D exactly when C rolls
    # over.
    conf_parts: list[NodeExpr] = [
        value_equals(0, k, c_bit),
        value_equals(0, k, d_bit),
        every(a_cell, implies(Not(and_all([max_c, max_d])), SomePath(down))),
    ]
    for i in range(k):
        carry = and_all([cbit(j) for j in range(i)])
        no_carry = or_all([Not(cbit(j)) for j in range(i)])
        # C-increment on every child.
        conf_parts.append(every(
            a_cell[and_all([carry, cbit(i)])], every(down, Not(cbit(i)))
        ))
        conf_parts.append(every(
            a_cell[and_all([carry, Not(cbit(i))])], every(down, cbit(i))
        ))
        conf_parts.append(every(
            a_cell[and_all([no_carry, cbit(i)])], every(down, cbit(i))
        ))
        conf_parts.append(every(
            a_cell[and_all([no_carry, Not(cbit(i))])], every(down, Not(cbit(i)))
        ))
        # D-increment exactly at C-rollover.
        d_carry = and_all([max_c] + [dbit(j) for j in range(i)])
        d_no_carry = and_all([max_c, or_all([Not(dbit(j)) for j in range(i)])])
        conf_parts.append(every(
            a_cell[and_all([d_carry, dbit(i)])], every(down, Not(dbit(i)))
        ))
        conf_parts.append(every(
            a_cell[and_all([d_carry, Not(dbit(i))])], every(down, dbit(i))
        ))
        conf_parts.append(every(
            a_cell[and_all([d_no_carry, dbit(i)])], every(down, dbit(i))
        ))
        conf_parts.append(every(
            a_cell[and_all([d_no_carry, Not(dbit(i))])], every(down, Not(dbit(i)))
        ))
        # D stays fixed while C has not rolled over.
        conf_parts.append(every(
            a_cell[and_all([Not(max_c), dbit(i)])], every(down, dbit(i))
        ))
        conf_parts.append(every(
            a_cell[and_all([Not(max_c), Not(dbit(i))])], every(down, Not(dbit(i)))
        ))
    conf = and_all(conf_parts)

    # φ''_tape: symbols and the initial configuration (D = 0 cells).
    within_word = or_all([value_equals(j, k, c_bit) for j in range(k)])
    initial = every(a_cell, implies(value_equals(0, k, d_bit), and_all([
        *[
            implies(value_equals(j, k, c_bit), Label(symbol_label(word[j])))
            for j in range(k)
        ],
        implies(Not(within_word), Label(symbol_label(machine.blank))),
        implies(value_equals(0, k, c_bit), Label(state_label(machine.initial))),
        implies(Not(value_equals(0, k, c_bit)), Not(some_state(machine))),
    ])))
    tape = and_all([
        every(a_cell, exactly_one_symbol(machine)),
        every(a_cell, at_most_one_state(machine)),
        initial,
    ])

    # φ''_head: at most one head per configuration (checked downward).
    head = every(a_cell, and_all([
        implies(Label(state_label(q)),
                every(a_gtcur, Not(Label(state_label(q2)))))
        for q in states for q2 in states
    ]))

    # φ''_id: non-head cells keep their symbol in the next configuration.
    ident = every(a_cell, and_all([
        implies(and_all([Label(symbol_label(a)), Not(some_state(machine))]),
                every(a_eq_nxt, Label(symbol_label(a))))
        for a in symbols
    ]))

    # φ''_Δ with the §6.3 markers, neighbor checks via ↓.
    def transition_witness(p: str, b: str, move: str) -> NodeExpr:
        return SomePath(Filter(a_eq_nxt, and_all([
            Label(symbol_label(b)),
            Label(marker_label(move, p)),
        ])))

    delta_parts: list[NodeExpr] = []
    for q in sorted(machine.existential | machine.universal):
        for a in symbols:
            options = [transition_witness(p, b, move)
                       for (p, b, move) in machine.moves(q, a)]
            trigger = and_all([Label(state_label(q)), Label(symbol_label(a))])
            if q in machine.existential:
                delta_parts.append(implies(trigger, or_all(options)))
            else:
                delta_parts.append(implies(trigger, and_all(options)))
    delta = every(a_cell, and_all(delta_parts))

    # φ''_mark: markers against the ↓ child (the C+1 cell of the same
    # configuration, except at rollover where no marker may sit anyway).
    mark = every(a_cell, and_all([
        and_all([
            implies(SomePath(down[Label(marker_label(LEFT, q))]),
                    Label(state_label(q))),
            implies(Label(marker_label(RIGHT, q)),
                    and_all([implies(Not(max_c),
                                     SomePath(down[Label(state_label(q))]))])),
        ])
        for q in states
    ]))

    acc = every(a_cell, Not(Label(state_label(machine.rejecting))))

    conjuncts = {
        "conf": conf, "tape": tape, "head": head, "id": ident,
        "delta": delta, "mark": mark, "acc": acc,
    }
    formula = and_all(list(conjuncts.values()))
    return DownwardReduction(machine, word, k, formula, conjuncts)


def encode_strategy_tree_downward(machine: ATM,
                                  word: str | tuple[str, ...]) -> MultiLabelTree:
    """The intended model of ``φ''_{M',w}`` (Figure 5): per branch of the
    strategy tree, a chain of 2^k configurations of 2^k cells each, padded
    with head-less copies after halting."""
    word = tuple(word)
    k = len(word)
    size = 2 ** k
    computation = machine.strategy_tree(word, size)

    labelsets: list[set[str]] = []
    parents: list[int | None] = []

    def new_node(labels: set[str], parent: int | None) -> int:
        labelsets.append(labels)
        parents.append(parent)
        return len(labelsets) - 1

    def bits(value: int, name) -> set[str]:
        return {name(i) for i in range(k) if (value >> i) & 1}

    def emit_marked_config(parent: int, marker: tuple[int, str],
                           node: ComputationNode, d_value: int) -> None:
        if d_value >= size:
            return
        state, tape, head = node.configuration
        marker_cell, marker_name = marker
        last = parent
        for c_value in range(size):
            labels = bits(c_value, c_bit) | bits(d_value, d_bit)
            labels.add(symbol_label(tape[c_value]))
            if head == c_value:
                labels.add(state_label(state))
            if c_value == marker_cell:
                labels.add(marker_name)
            last = new_node(labels, last)
        successors = node.children
        if not successors and d_value + 1 < size:
            emit_plain_chain(last, tape, d_value + 1)
            return
        for successor in successors:
            emit_marked_config(last, _with_marker(node, successor, machine),
                               successor, d_value + 1)

    def emit_plain_chain(parent: int, tape: tuple[str, ...], d_value: int) -> None:
        last = parent
        for d in range(d_value, size):
            for c_value in range(size):
                labels = bits(c_value, c_bit) | bits(d, d_bit)
                labels.add(symbol_label(tape[c_value]))
                last = new_node(labels, last)

    def _with_marker(parent_node: ComputationNode, child: ComputationNode,
                     machine: ATM) -> tuple[int, str]:
        parent_head = parent_node.configuration[2]
        child_state, _, child_head = child.configuration
        move = RIGHT if child_head > parent_head else LEFT
        return (parent_head, marker_label(move, child_state))

    state, tape, head = computation.configuration
    root_labels = bits(0, c_bit) | bits(0, d_bit)
    root_labels.add(symbol_label(tape[0]))
    if head == 0:
        root_labels.add(state_label(state))
    # Re-emit uniformly via emit_marked_config-style loop: build the first
    # configuration by hand, then successors.
    last = new_node(root_labels, None)
    for c_value in range(1, size):
        labels = bits(c_value, c_bit) | bits(0, d_bit)
        labels.add(symbol_label(tape[c_value]))
        if head == c_value:
            labels.add(state_label(state))
        last = new_node(labels, last)
    successors = computation.children
    if not successors:
        emit_plain_chain(last, tape, 1)
    else:
        for successor in successors:
            emit_marked_config(last, _with_marker(computation, successor, machine),
                               successor, 1)

    skeleton = XMLTree([""] * len(labelsets), parents)
    return MultiLabelTree(skeleton, [frozenset(ls) for ls in labelsets])
