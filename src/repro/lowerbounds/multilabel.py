"""Lemma 25: from multi-labeled trees back to standard XML trees.

The §6 reductions use multi-labeled trees for convenience.  Lemma 25 removes
them: every node of the multi-labeled tree becomes an ``x``-marked node
whose carried labels move to auxiliary leaf children (the tree side is
:func:`repro.trees.encode_multilabel_tree`); on the formula side each label
test ``p`` becomes ``⟨↓[p]⟩`` and the axes are restricted to ``x``-marked
nodes.

Auxiliary children are appended *after* the real children, so for fragments
with sibling axes we additionally assert that no auxiliary node has an
``x``-marked right sibling; auxiliary nodes are always asserted to be
leaves.  Both axioms are scoped to the subtree of the evaluation node, as in
the paper's sketch (``¬⟨↓*[¬x]/↓⟩``).
"""

from __future__ import annotations

from ..trees import REAL_NODE_MARKER
from ..xpath.ast import (
    Axis,
    AxisStep,
    Filter,
    Label,
    NodeExpr,
    Not,
    SomePath,
)
from ..xpath.builders import and_all, down, down_star, right
from ..xpath.measures import axes_used, labels_used
from ..xpath.rewrite import relativize_axes, substitute_label

__all__ = ["encode_formula"]


def encode_formula(phi: NodeExpr, marker: str = REAL_NODE_MARKER) -> NodeExpr:
    """``φ'`` of Lemma 25: satisfiable over standard trees iff ``φ`` is
    satisfiable over multi-labeled trees.

    Works for any fragment; the structural axioms emitted depend on the
    axes ``φ`` uses.
    """
    if marker in labels_used(phi):
        raise ValueError(f"marker label {marker!r} occurs in the formula")
    real = Label(marker)

    # (ii) make the formula blind to auxiliary nodes, (i) read labels off
    # the auxiliary children.  Order matters: relativize first so the ⟨↓[p]⟩
    # gadgets (which must see auxiliary nodes) are not themselves guarded.
    transformed = relativize_axes(phi, real)
    for name in sorted(labels_used(phi)):
        transformed = substitute_label(
            transformed, name, SomePath(Filter(down, Label(name)))
        )

    axioms: list[NodeExpr] = [
        real,
        # Auxiliary nodes are leaves.
        Not(SomePath(Filter(down_star, Not(real)) / down)),
    ]
    used = axes_used(phi)
    if Axis.RIGHT in used or Axis.LEFT in used:
        # Auxiliary children sit to the right of all real children.
        axioms.append(Not(SomePath(
            Filter(down_star, Not(real)) / Filter(right, real)
        )))
    return and_all([transformed, *axioms])
