"""The Figure 2 algorithm: satisfiability of CoreXPath↓(∩) w.r.t. an EDTD
(Theorems 23/24; EXPSPACE upper bound).

The paper presents a *nondeterministic* procedure that guesses a branch of
complete types (Definition 22) within the Lemma 21 depth bound.  We
implement its deterministic equivalent as a bottom-up *type elimination*
fixpoint, which is how one actually runs such algorithms:

1. Enumerate all complete types for ``φ₀`` and ``D`` — a choice of abstract
   label ``s ∈ Δ`` plus a truth assignment to the "modal atoms" (the
   ``aux(φ₀)`` suffixes starting with ``↓`` or ``↓*``); all other members of
   ``cl(φ₀)`` are derived bottom-up along the ≺ order of Theorem 23, and
   assignments violating the closure conditions are discarded.
2. Iteratively collect the *realizable* types: ``t`` is added once some
   children-type word is (a) accepted by the content-model NFA of ``t``'s
   abstract label, (b) made of already-realizable types ``t'`` with
   ``t ⇒ t'``, and (c) covers every demand of ``t``.  The word search runs
   over (NFA-state-set, unmet-demands) configurations with visited-set
   pruning — the finite-configuration analogue of the paper's
   ``k ≤ (|aux(φ₀)|+1)·|D|`` branching bound.
3. ``φ₀`` is satisfiable w.r.t. ``D`` iff some realizable type contains
   ``φ₀`` and the root type.

Because children always use types realized in an earlier round, a witness
tree can be reconstructed; :func:`downward_cap_satisfiable` returns it.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from .. import obs
from ..edtd import EDTD
from ..trees import XMLTree
from ..xpath.ast import And, Label, NodeExpr, Not, SomePath, Top
from ..xpath.measures import node_subexpressions
from .problems import SatResult, Verdict
from .simplepaths import DOWN, DOWN_STAR, SimplePath, instantiate, suffixes

__all__ = ["downward_cap_satisfiable", "TypeSystem", "CompleteType",
           "TooManyModalAtoms"]


class TooManyModalAtoms(RuntimeError):
    """The type space would be too large to enumerate explicitly."""


@dataclass(frozen=True)
class CompleteType:
    """A complete type (Definition 22): an abstract label plus the set of
    true ``aux`` suffixes and true node subexpressions."""

    abstract: str
    true_suffixes: frozenset[SimplePath]
    true_subs: frozenset[NodeExpr]

    def holds_suffix(self, suffix: SimplePath) -> bool:
        return suffix in self.true_suffixes

    def holds(self, expr: NodeExpr) -> bool:
        return expr in self.true_subs


#: A demand (Definition 22): ("down", remainder) must hold at some child;
#: ("star", suffix) must hold at some child (and propagates).
Demand = tuple[str, SimplePath]


class TypeSystem:
    """The ``sub``/``inst``/``aux`` machinery for one input ``(φ₀, D)``."""

    def __init__(self, phi0: NodeExpr, edtd: EDTD, max_modal_atoms: int = 18,
                 frame=None):
        self.phi0 = phi0
        self.edtd = edtd
        # ``frame`` is the schema's compiled TypeFrame: the same sorted
        # abstract-label order, with content NFAs already built.  Using it
        # changes nothing observable (it is a pure function of the EDTD);
        # a frame for a different EDTD instance is ignored.
        if frame is not None and frame.edtd is edtd:
            self.labels: tuple[str, ...] = frame.labels
        else:
            self.labels = tuple(sorted(edtd.abstract_labels))
        self.subs: list[NodeExpr] = sorted(node_subexpressions(phi0), key=repr)
        self.inst: dict[NodeExpr, frozenset[SimplePath]] = {}
        all_suffixes: set[SimplePath] = set()
        for sub in self.subs:
            if isinstance(sub, SomePath):
                members = instantiate(sub.path)
                self.inst[sub] = members
                for member in members:
                    all_suffixes.update(suffixes(member))
        self.all_suffixes = sorted(all_suffixes, key=repr)
        self.modal_atoms: list[SimplePath] = [
            suffix for suffix in self.all_suffixes
            if suffix and suffix[0] in (DOWN, DOWN_STAR)
        ]
        if len(self.modal_atoms) > max_modal_atoms:
            raise TooManyModalAtoms(
                f"{len(self.modal_atoms)} modal atoms (> {max_modal_atoms}); "
                "the explicit type enumeration would not fit in memory"
            )

    # ---------------------------------------------------------------- types

    def derive_type(self, abstract: str,
                    assignment: dict[SimplePath, bool]) -> CompleteType | None:
        """Close a modal-atom assignment under the Definition 22 conditions;
        None if the ↓*-monotonicity condition is violated."""
        concrete = self.edtd.projection[abstract]
        suffix_truth: dict[SimplePath, bool] = {}
        sub_truth: dict[NodeExpr, bool] = {}

        def truth_suffix(suffix: SimplePath) -> bool:
            cached = suffix_truth.get(suffix)
            if cached is not None:
                return cached
            if not suffix:
                value = True
            elif suffix[0] in (DOWN, DOWN_STAR):
                value = assignment[suffix]
            else:
                value = truth_sub(suffix[0]) and truth_suffix(suffix[1:])
            suffix_truth[suffix] = value
            return value

        def truth_sub(expr: NodeExpr) -> bool:
            cached = sub_truth.get(expr)
            if cached is not None:
                return cached
            match expr:
                case Label(name=name):
                    value = name == concrete
                case Top():
                    value = True
                case Not(child=c):
                    value = not truth_sub(c)
                case And(left=a, right=b):
                    value = truth_sub(a) and truth_sub(b)
                case SomePath():
                    value = any(truth_suffix(member) for member in self.inst[expr])
                case _:
                    raise ValueError(
                        f"{type(expr).__name__} is outside CoreXPath↓(∩)"
                    )
            sub_truth[expr] = value
            return value

        for suffix in self.all_suffixes:
            truth_suffix(suffix)
        for sub in self.subs:
            truth_sub(sub)
        # Closure condition: ⟨β⟩ ∈ t implies ⟨↓*/β⟩ ∈ t.
        for suffix in self.modal_atoms:
            if suffix[0] == DOWN_STAR and truth_suffix(suffix[1:]) \
                    and not assignment[suffix]:
                return None
        return CompleteType(
            abstract,
            frozenset(s for s, true in suffix_truth.items() if true),
            frozenset(e for e, true in sub_truth.items() if true),
        )

    def all_types(self) -> list[CompleteType]:
        """Every complete type for ``(φ₀, D)``."""
        types: list[CompleteType] = []
        for abstract in self.labels:
            for bits in itertools.product(
                    (False, True), repeat=len(self.modal_atoms)):
                assignment = dict(zip(self.modal_atoms, bits))
                complete = self.derive_type(abstract, assignment)
                if complete is not None:
                    types.append(complete)
        return types

    # -------------------------------------------------- demands and ⇒

    def demands(self, t: CompleteType) -> frozenset[Demand]:
        result: set[Demand] = set()
        for suffix in self.modal_atoms:
            if not t.holds_suffix(suffix):
                continue
            if suffix[0] == DOWN:
                result.add(("down", suffix[1:]))
            elif not t.holds_suffix(suffix[1:]):  # ↓*/β with ⟨β⟩ ∉ t
                result.add(("star", suffix))
        return frozenset(result)

    def child_compatible(self, t: CompleteType, child: CompleteType) -> bool:
        """``t ⇒ child`` (Definition 22)."""
        for suffix in self.modal_atoms:
            if suffix[0] == DOWN:
                if child.holds_suffix(suffix[1:]) and not t.holds_suffix(suffix):
                    return False
            else:
                if child.holds_suffix(suffix) and not t.holds_suffix(suffix):
                    return False
        return True

    def child_discharges(self, demand: Demand, child: CompleteType) -> bool:
        kind, suffix = demand
        return child.holds_suffix(suffix)


def downward_cap_satisfiable(phi0: NodeExpr, edtd: EDTD,
                             max_modal_atoms: int = 18,
                             frame=None) -> SatResult:
    """Decide satisfiability of a CoreXPath↓(∩) node expression w.r.t. an
    EDTD by the (determinized) Figure 2 algorithm.  Complete: the verdict is
    always conclusive.  Returns a witness tree when satisfiable.

    Figure 2 tests its input at the *root*; satisfiability at an arbitrary
    node is the same as ``⟨↓*[φ₀]⟩`` at the root, which stays inside the
    downward fragment, so we run the algorithm on that wrapper.

    ``frame`` may be the schema's compiled
    :class:`~repro.edtd.compiled.TypeFrame` (label order + warm content
    NFAs); the output is byte-identical with or without it, so the
    frameless call doubles as the differential oracle.
    """
    from ..semantics import evaluate_nodes
    from ..xpath.ast import AxisClosure, Axis, Filter, SomePath

    with obs.span("expspace.setup"):
        wrapped = SomePath(Filter(AxisClosure(Axis.DOWN), phi0))
        system = TypeSystem(wrapped, edtd, max_modal_atoms, frame=frame)
        candidate_space = len(system.labels) * 2 ** len(system.modal_atoms)
    obs.gauge("expspace.modal_atoms", len(system.modal_atoms))
    obs.gauge("expspace.candidate_space", candidate_space)
    if candidate_space > 60_000:
        raise TooManyModalAtoms(
            f"{candidate_space} candidate types; the explicit enumeration "
            "would be too large"
        )
    with obs.span("expspace.types", candidates=candidate_space) as type_span:
        types = system.all_types()
        demand_table = {t: system.demands(t) for t in types}
        type_span.annotate(types=len(types))
    obs.count("expspace.types_enumerated", len(types))

    realizable: dict[CompleteType, tuple[CompleteType, ...]] = {}
    last_attempt: dict[CompleteType, int] = {}
    with obs.span("expspace.fixpoint") as fixpoint_span:
        changed = True
        while changed:
            changed = False
            obs.count("expspace.fixpoint_rounds")
            for t in types:
                if t in realizable:
                    continue
                # Re-attempt only when new types became realizable since the
                # last try for this t.
                if last_attempt.get(t) == len(realizable):
                    continue
                last_attempt[t] = len(realizable)
                word = _find_children_word(system, t, demand_table[t], realizable)
                if word is not None:
                    realizable[t] = word
                    changed = True
        fixpoint_span.annotate(realizable=len(realizable))
    obs.gauge("expspace.realizable_types", len(realizable))

    with obs.span("expspace.witness"):
        for t in types:
            if t.abstract == edtd.root_type and t.holds(wrapped) \
                    and t in realizable:
                witness = _reconstruct(system, t, realizable)
                nodes = evaluate_nodes(witness, phi0)
                if not nodes:
                    raise AssertionError(
                        "Figure 2 certificate did not yield a model — "
                        "type-system bug"
                    )
                return SatResult(Verdict.SATISFIABLE, witness, min(nodes),
                                 explored_up_to=witness.size,
                                 trees_checked=len(types))
        return SatResult(Verdict.UNSATISFIABLE, trees_checked=len(types))


def _find_children_word(
    system: TypeSystem,
    t: CompleteType,
    demands: frozenset[Demand],
    realizable: dict[CompleteType, tuple[CompleteType, ...]],
) -> tuple[CompleteType, ...] | None:
    """A word t₁…t_k of realizable, ``t ⇒ tᵢ``-compatible types accepted by
    the content-model NFA of ``t`` and discharging all demands; None if no
    such word exists.  BFS over (NFA states, unmet demands) configurations.

    Candidates are collapsed by their *profile* — abstract label plus the
    subset of ``t``'s demands they discharge — since two children with the
    same profile are interchangeable for this search; this keeps the
    branching factor at ``|Δ| · 2^{|demands|}`` instead of the number of
    realizable types."""
    obs.count("expspace.word_searches")
    nfa = system.edtd.content_nfa(t.abstract)
    profiles: dict[tuple, CompleteType] = {}
    for child in realizable:
        if not system.child_compatible(t, child):
            continue
        profile = (
            child.abstract,
            frozenset(d for d in demands if system.child_discharges(d, child)),
        )
        profiles.setdefault(profile, child)
    candidates = list(profiles.values())

    start = (frozenset(nfa.initial), demands)
    parents: dict[tuple, tuple[tuple, CompleteType] | None] = {start: None}
    queue = deque([start])
    while queue:
        config = queue.popleft()
        obs.count("expspace.configs_explored")
        states, unmet = config
        if not unmet and states & nfa.accepting:
            word: list[CompleteType] = []
            cursor = config
            while parents[cursor] is not None:
                cursor, child = parents[cursor]  # type: ignore[misc]
                word.append(child)
            word.reverse()
            return tuple(word)
        for child in candidates:
            step: set[int] = set()
            for state in states:
                step |= nfa.successors(state, child.abstract)
            if not step:
                continue
            remaining = frozenset(
                demand for demand in unmet
                if not system.child_discharges(demand, child)
            )
            successor = (frozenset(step), remaining)
            if successor not in parents:
                parents[successor] = (config, child)
                queue.append(successor)
    return None


def _reconstruct(
    system: TypeSystem,
    t: CompleteType,
    realizable: dict[CompleteType, tuple[CompleteType, ...]],
) -> XMLTree:
    """Build a witness tree from the realizability certificates.  Terminates
    because every child in a certificate was realized in an earlier fixpoint
    round (the BFS only used already-realizable candidates)."""
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(current: CompleteType, parent: int | None) -> None:
        labels.append(system.edtd.projection[current.abstract])
        parents.append(parent)
        me = len(labels) - 1
        for child in realizable[current]:
            emit(child, me)

    emit(t, None)
    return XMLTree(labels, parents)


# ----------------------------------------------------------- registry glue

from .registry import Engine, default_registry  # noqa: E402  (after the
# algorithm proper: the registry depends only on .problems, so this import
# cannot cycle back into this module.)


class ExpspaceEngine(Engine):
    """Registry adapter for the complete Figure 2 procedure.

    Admits CoreXPath↓(∩) inputs — directly for satisfiability w.r.t. a
    schema, via the Prop. 5 reduction for schemaless satisfiability, via
    the Prop. 4 reduction for containment.  Verdicts are always
    conclusive.  Declines at runtime (``solve`` returns ``None``) when the
    explicit type enumeration would not fit in memory; the registry then
    falls through to the bounded engine.
    """

    name = "expspace"
    conclusive = True
    cost_hint = 10

    def admits(self, problem) -> bool:
        from ..xpath.fragments import DOWNWARD_CAP
        from .problems import ProblemKind
        from .reductions import containment_to_node_unsat, sat_to_edtd_sat

        if problem.kind is ProblemKind.SATISFIABILITY:
            if not DOWNWARD_CAP.admits(problem.phi):
                return False
            if problem.edtd is None:
                return DOWNWARD_CAP.admits(sat_to_edtd_sat(problem.phi).formula)
            return True
        if problem.kind is ProblemKind.CONTAINMENT:
            reduction = containment_to_node_unsat(problem.alpha, problem.beta,
                                                  problem.edtd)
            return DOWNWARD_CAP.admits(reduction.formula)
        return False

    def solve(self, problem, session=None):
        from .problems import ContainmentResult, ProblemKind
        from .reductions import containment_to_node_unsat
        from .session import session_for

        obs.note("engine", self.name)
        if session is None:
            session = session_for(problem)
        compiled = session.compiled
        # The compiled EDTD has the same fingerprint as the problem's (that
        # is what the session id hashes), so it is behaviorally identical —
        # but its content NFAs and type frame are already warm.
        edtd = compiled.edtd if compiled.edtd is not None else problem.edtd
        if problem.kind is ProblemKind.SATISFIABILITY:
            result = self._satisfiable(problem.phi, edtd, compiled)
            if result is not None:
                obs.count(f"dispatch.{self.name}")
            return result
        reduction = containment_to_node_unsat(problem.alpha, problem.beta,
                                              edtd, schema=compiled)
        inner = self._satisfiable(reduction.formula, reduction.edtd, compiled)
        if inner is None:
            return None
        obs.count(f"dispatch.{self.name}")
        if inner.verdict is Verdict.SATISFIABLE:
            tree, pair = reduction.decode(inner.witness, inner.witness_node)
            return ContainmentResult(Verdict.SATISFIABLE, tree, pair,
                                     explored_up_to=tree.size,
                                     trees_checked=inner.trees_checked)
        return ContainmentResult(Verdict.UNSATISFIABLE,
                                 trees_checked=inner.trees_checked)

    def _satisfiable(self, phi: NodeExpr, edtd: EDTD | None,
                     compiled=None) -> SatResult | None:
        from .reductions import sat_to_edtd_sat

        if edtd is None:
            reduction = sat_to_edtd_sat(phi, schema=compiled)
            frame = None if compiled is None \
                else compiled.type_frame(reduction.edtd)
            try:
                inner = downward_cap_satisfiable(reduction.formula,
                                                 reduction.edtd, frame=frame)
            except TooManyModalAtoms:
                obs.count("dispatch.expspace_too_large")
                return None
            if inner.verdict is Verdict.SATISFIABLE:
                tree, node = reduction.decode(inner.witness, inner.witness_node)
                return SatResult(Verdict.SATISFIABLE, tree, node,
                                 explored_up_to=tree.size,
                                 trees_checked=inner.trees_checked)
            return inner
        frame = None if compiled is None else compiled.type_frame(edtd)
        try:
            return downward_cap_satisfiable(phi, edtd, frame=frame)
        except TooManyModalAtoms:
            obs.count("dispatch.expspace_too_large")
            return None


default_registry().register(ExpspaceEngine())
