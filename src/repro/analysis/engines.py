"""Satisfiability engines based on systematic model search.

This is the dispatch ladder's fallback below the conclusive procedures
(the Figure 2 EXPSPACE engine and the Theorem 10 2ATA emptiness engine of
:mod:`repro.analysis.automata_engine`): a witness search that is

* **complete for satisfiable inputs** given enough budget — it enumerates
  *every* tree up to the size bound over the relevant label alphabet, in
  order of increasing size, so the first witness found is minimal; and
* **exact up to the bound** for unsatisfiable inputs — "no tree with ≤ n
  nodes satisfies φ" is a theorem, not a sample.

The relevant alphabet is the expressions' labels plus one fresh label, which
is sufficient by the relabeling argument in the proof of Prop. 4.  With an
EDTD, candidate trees are generated directly from the schema
(:func:`repro.edtd.generate.all_conforming_trees`) rather than enumerated
and filtered.

Since the engine-kernel refactor the searches are plan-based: each query is
compiled once (:func:`repro.semantics.compile_plan` — normalized, interned,
common subexpressions shared between ``α`` and ``β``) and the compiled plan
is executed against a fresh :class:`~repro.semantics.TreeContext` per
candidate tree.  :class:`BoundedEngine` and :class:`RandomEngine` adapt
these searches to the engine registry.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from .. import obs
from ..edtd import EDTD, all_conforming_trees, random_conforming_tree
from ..semantics import TreeContext, compile_plan
from ..trees import XMLTree, all_trees, random_tree
from ..xpath.ast import Expr, NodeExpr, PathExpr
from ..xpath.measures import labels_used
from .problems import (
    DEFAULT_MAX_NODES,
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
    Verdict,
)
from .reductions import fresh_label
from .registry import Engine, default_registry

__all__ = [
    "BoundedEngine",
    "RandomEngine",
    "node_satisfiable",
    "path_satisfiable",
    "check_containment",
    "relevant_alphabet",
    "random_witness_search",
    "DEFAULT_MAX_NODES",
]


def relevant_alphabet(*exprs: Expr | EDTD, edtd: EDTD | None = None) -> list[str]:
    """The labels worth trying in models of the given expressions: their own
    labels plus one shared fresh label (without an EDTD), or the schema's
    concrete labels (with).

    Accepts any number of expressions — engines working on several inputs
    (containment's ``α`` and ``β``) compute one joint alphabet instead of
    unioning per-expression alphabets each carrying its own fresh label.
    For backward compatibility the EDTD may also be passed as the last
    positional argument.
    """
    if exprs and isinstance(exprs[-1], EDTD):
        if edtd is not None:
            raise TypeError("EDTD given both positionally and by keyword")
        edtd = exprs[-1]
        exprs = exprs[:-1]
    if edtd is not None:
        return sorted(edtd.concrete_labels())
    used: set[str] = set()
    for expr in exprs:
        assert not isinstance(expr, EDTD)
        used |= labels_used(expr)
    return sorted(used | {fresh_label(used)})


def _candidate_trees(
    max_nodes: int,
    edtd: EDTD | None,
    alphabet: Iterable[str] | None,
    *exprs: Expr,
) -> Iterator[XMLTree]:
    """Candidate models in increasing size order.

    With a schema (and no explicit alphabet override) trees are generated
    directly from the schema; otherwise all trees over the relevant
    alphabet are enumerated, filtered by conformance if needed.
    """
    if edtd is not None and alphabet is None:
        return all_conforming_trees(edtd, max_nodes)
    if alphabet is None:
        alphabet = relevant_alphabet(*exprs)
    trees = all_trees(max_nodes, list(alphabet))
    if edtd is None:
        return iter(trees)
    return (tree for tree in trees if edtd.conforms(tree))


def _sized_trees(trees: Iterable[XMLTree]) -> Iterator[XMLTree]:
    """Wrap a size-ordered tree stream with one obs span per candidate size;
    a plain pass-through when instrumentation is off.  The per-size spans
    are what the Table I growth plots need — the cost of the search
    concentrates in the last size tried."""
    if obs.active() is None:
        yield from trees
        return
    current_size: int | None = None
    size_span = obs.NULL_SPAN
    enumerated = 0
    try:
        for tree in trees:
            if tree.size != current_size:
                size_span.annotate(trees=enumerated)
                size_span.finish()
                current_size = tree.size
                enumerated = 0
                size_span = obs.span("bounded.size", nodes=current_size).start()
            enumerated += 1
            obs.count("trees.enumerated")
            yield tree
    finally:
        size_span.annotate(trees=enumerated)
        size_span.finish()


def node_satisfiable(
    phi: NodeExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Is some node of some XML tree (conforming to ``edtd``, if given) in
    ``[[φ]]``?  Exhaustive over all trees with at most ``max_nodes`` nodes."""
    plan = compile_plan(phi)
    checked = 0
    with obs.span("bounded.search", problem="node-satisfiability",
                  max_nodes=max_nodes):
        for tree in _sized_trees(
                _candidate_trees(max_nodes, edtd, alphabet, phi)):
            checked += 1
            obs.count("evaluator.calls")
            nodes = plan.run(TreeContext(tree))[0]
            assert isinstance(nodes, frozenset)
            if nodes:
                obs.count("trees.checked", checked)
                return SatResult(Verdict.SATISFIABLE, tree, min(nodes),
                                 explored_up_to=tree.size, trees_checked=checked)
        obs.count("trees.checked", checked)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                         explored_up_to=max_nodes, trees_checked=checked)


def path_satisfiable(
    alpha: PathExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Is ``[[α]]`` nonempty on some tree?  (§2.3 path satisfiability.)"""
    plan = compile_plan(alpha)
    checked = 0
    with obs.span("bounded.search", problem="path-satisfiability",
                  max_nodes=max_nodes):
        for tree in _sized_trees(
                _candidate_trees(max_nodes, edtd, alphabet, alpha)):
            checked += 1
            obs.count("evaluator.calls")
            relation = plan.run(TreeContext(tree))[0]
            assert isinstance(relation, dict)
            for source, targets in sorted(relation.items()):
                if targets:
                    obs.count("trees.checked", checked)
                    return SatResult(Verdict.SATISFIABLE, tree, source,
                                     explored_up_to=tree.size,
                                     trees_checked=checked)
        obs.count("trees.checked", checked)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                         explored_up_to=max_nodes, trees_checked=checked)


def check_containment(
    alpha: PathExpr,
    beta: PathExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
) -> ContainmentResult:
    """Does ``[[α]] ⊆ [[β]]`` hold on every tree (conforming to ``edtd``)?

    Searches directly for a counterexample tree.  Both sides are compiled
    into one shared plan, so subexpressions common to ``α`` and ``β`` are
    evaluated once per candidate tree; the joint alphabet is the labels of
    both expressions plus one fresh label (sufficient by Prop. 4's
    relabeling argument).
    """
    plan = compile_plan(alpha, beta)
    checked = 0
    with obs.span("bounded.search", problem="containment",
                  max_nodes=max_nodes):
        for tree in _sized_trees(
                _candidate_trees(max_nodes, edtd, None, alpha, beta)):
            checked += 1
            obs.count("evaluator.calls")
            left, right = plan.run(TreeContext(tree))
            assert isinstance(left, dict) and isinstance(right, dict)
            for source, targets in sorted(left.items()):
                extra = targets - right.get(source, frozenset())
                if extra:
                    obs.count("trees.checked", checked)
                    return ContainmentResult(
                        Verdict.SATISFIABLE, tree, (source, min(extra)),
                        explored_up_to=tree.size, trees_checked=checked,
                    )
        obs.count("trees.checked", checked)
        return ContainmentResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                                 explored_up_to=max_nodes, trees_checked=checked)


def random_witness_search(
    phi: NodeExpr,
    rng: random.Random,
    attempts: int = 2000,
    max_nodes: int = 12,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Randomized witness search: samples larger trees than the exhaustive
    engine can afford.  Finding a witness is conclusive; not finding one is
    only evidence."""
    alphabet = list(alphabet) if alphabet is not None else relevant_alphabet(phi, edtd=edtd)
    plan = compile_plan(phi)
    with obs.span("bounded.random_search", attempts=attempts,
                  max_nodes=max_nodes):
        for attempt in range(attempts):
            if edtd is not None:
                tree = random_conforming_tree(edtd, rng, max_nodes=max_nodes)
            else:
                tree = random_tree(rng, max_nodes, alphabet)
            obs.count("trees.sampled")
            obs.count("evaluator.calls")
            nodes = plan.run(TreeContext(tree))[0]
            assert isinstance(nodes, frozenset)
            if nodes:
                return SatResult(Verdict.SATISFIABLE, tree, min(nodes),
                                 trees_checked=attempt + 1)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND, trees_checked=attempts)


# ----------------------------------------------------------- registry glue


class BoundedEngine(Engine):
    """Exhaustive bounded model search — admits every input fragment; its
    negative verdicts are exact only up to the size bound."""

    name = "bounded"
    conclusive = False
    cost_hint = 100

    def admits(self, problem: Problem) -> bool:
        return problem.kind in (ProblemKind.SATISFIABILITY,
                                ProblemKind.CONTAINMENT)

    def solve(self, problem: Problem,
              session=None) -> SatResult | ContainmentResult:
        obs.note("engine", self.name)
        obs.count(f"dispatch.{self.name}")
        if problem.kind is ProblemKind.SATISFIABILITY:
            assert problem.phi is not None
            return node_satisfiable(problem.phi, max_nodes=problem.max_nodes,
                                    edtd=problem.edtd)
        assert problem.alpha is not None and problem.beta is not None
        return check_containment(problem.alpha, problem.beta,
                                 max_nodes=problem.max_nodes, edtd=problem.edtd)


class RandomEngine(Engine):
    """Randomized witness sampling: reaches deeper trees than exhaustive
    search, but only its positive verdicts mean anything.  Never chosen
    automatically — the bounded engine admits everything this one does at a
    lower cost hint — so it runs only when forced by name."""

    name = "random"
    conclusive = False
    cost_hint = 1000
    attempts = 2000
    sample_max_nodes = 12
    #: Sampling cares about witness shape, not minimal query size: the
    #: cheap normalizer is enough, so this engine declares pipeline level
    #: ``basic`` instead of inheriting the session default.
    pipeline = "basic"

    def admits(self, problem: Problem) -> bool:
        return problem.kind is ProblemKind.SATISFIABILITY

    def solve(self, problem: Problem, session=None) -> SatResult:
        obs.note("engine", self.name)
        obs.count(f"dispatch.{self.name}")
        assert problem.phi is not None
        rng = random.Random(0)
        return random_witness_search(
            problem.phi, rng, attempts=self.attempts,
            max_nodes=max(problem.max_nodes, self.sample_max_nodes),
            edtd=problem.edtd,
        )


default_registry().register(BoundedEngine())
default_registry().register(RandomEngine())
