"""Satisfiability engines based on systematic model search.

This is the reproduction's substitute for the paper's worst-case-optimal
decision procedures (2ATA emptiness, Theorem 10): a witness search that is

* **complete for satisfiable inputs** given enough budget — it enumerates
  *every* tree up to the size bound over the relevant label alphabet, in
  order of increasing size, so the first witness found is minimal; and
* **exact up to the bound** for unsatisfiable inputs — "no tree with ≤ n
  nodes satisfies φ" is a theorem, not a sample.

The relevant alphabet is the expression's labels plus one fresh label, which
is sufficient by the relabeling argument in the proof of Prop. 4.  With an
EDTD, candidate trees are additionally required to conform (or are generated
from the schema in randomized mode).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from .. import obs
from ..edtd import EDTD, random_conforming_tree
from ..semantics import Evaluator
from ..trees import all_trees, random_tree
from ..xpath.ast import NodeExpr, PathExpr
from ..xpath.measures import labels_used
from .problems import ContainmentResult, SatResult, Verdict
from .reductions import fresh_label

__all__ = [
    "node_satisfiable",
    "path_satisfiable",
    "check_containment",
    "relevant_alphabet",
    "random_witness_search",
]

DEFAULT_MAX_NODES = 6


def relevant_alphabet(phi: NodeExpr | PathExpr, edtd: EDTD | None = None) -> list[str]:
    """The labels worth trying in models of ``phi``: its own labels plus one
    fresh label (without an EDTD), or the schema's concrete labels (with)."""
    if edtd is not None:
        return sorted(edtd.concrete_labels())
    used = labels_used(phi)
    return sorted(used | {fresh_label(used)})


def _sized_trees(max_nodes: int, alphabet: list[str]) -> Iterator:
    """``all_trees`` with one obs span per candidate size (they arrive in
    increasing size order); a plain pass-through when instrumentation is
    off.  The per-size spans are what the Table I growth plots need — the
    cost of the search concentrates in the last size tried."""
    if obs.active() is None:
        yield from all_trees(max_nodes, alphabet)
        return
    current_size: int | None = None
    size_span = obs.NULL_SPAN
    enumerated = 0
    try:
        for tree in all_trees(max_nodes, alphabet):
            if tree.size != current_size:
                size_span.annotate(trees=enumerated)
                size_span.finish()
                current_size = tree.size
                enumerated = 0
                size_span = obs.span("bounded.size", nodes=current_size).start()
            enumerated += 1
            obs.count("trees.enumerated")
            yield tree
    finally:
        size_span.annotate(trees=enumerated)
        size_span.finish()


def node_satisfiable(
    phi: NodeExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Is some node of some XML tree (conforming to ``edtd``, if given) in
    ``[[φ]]``?  Exhaustive over all trees with at most ``max_nodes`` nodes."""
    alphabet = list(alphabet) if alphabet is not None else relevant_alphabet(phi, edtd)
    checked = 0
    with obs.span("bounded.search", problem="node-satisfiability",
                  max_nodes=max_nodes, alphabet=len(alphabet)):
        for tree in _sized_trees(max_nodes, alphabet):
            if edtd is not None and not edtd.conforms(tree):
                continue
            checked += 1
            nodes = Evaluator(tree).nodes(phi)
            if nodes:
                obs.count("trees.checked", checked)
                return SatResult(Verdict.SATISFIABLE, tree, min(nodes),
                                 explored_up_to=tree.size, trees_checked=checked)
        obs.count("trees.checked", checked)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                         explored_up_to=max_nodes, trees_checked=checked)


def path_satisfiable(
    alpha: PathExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Is ``[[α]]`` nonempty on some tree?  (§2.3 path satisfiability.)"""
    alphabet = list(alphabet) if alphabet is not None else relevant_alphabet(alpha, edtd)
    checked = 0
    with obs.span("bounded.search", problem="path-satisfiability",
                  max_nodes=max_nodes, alphabet=len(alphabet)):
        for tree in _sized_trees(max_nodes, alphabet):
            if edtd is not None and not edtd.conforms(tree):
                continue
            checked += 1
            relation = Evaluator(tree).path(alpha)
            for source, targets in sorted(relation.items()):
                if targets:
                    obs.count("trees.checked", checked)
                    return SatResult(Verdict.SATISFIABLE, tree, source,
                                     explored_up_to=tree.size,
                                     trees_checked=checked)
        obs.count("trees.checked", checked)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                         explored_up_to=max_nodes, trees_checked=checked)


def check_containment(
    alpha: PathExpr,
    beta: PathExpr,
    max_nodes: int = DEFAULT_MAX_NODES,
    edtd: EDTD | None = None,
) -> ContainmentResult:
    """Does ``[[α]] ⊆ [[β]]`` hold on every tree (conforming to ``edtd``)?

    Searches directly for a counterexample tree; the alphabet is the labels
    of both expressions plus one fresh label (sufficient by Prop. 4's
    relabeling argument).
    """
    alphabet = sorted(
        set(relevant_alphabet(alpha, edtd)) | set(relevant_alphabet(beta, edtd))
    )
    checked = 0
    with obs.span("bounded.search", problem="containment",
                  max_nodes=max_nodes, alphabet=len(alphabet)):
        for tree in _sized_trees(max_nodes, alphabet):
            if edtd is not None and not edtd.conforms(tree):
                continue
            checked += 1
            evaluator = Evaluator(tree)
            left = evaluator.path(alpha)
            right = evaluator.path(beta)
            for source, targets in sorted(left.items()):
                extra = targets - right.get(source, frozenset())
                if extra:
                    obs.count("trees.checked", checked)
                    return ContainmentResult(
                        Verdict.SATISFIABLE, tree, (source, min(extra)),
                        explored_up_to=tree.size, trees_checked=checked,
                    )
        obs.count("trees.checked", checked)
        return ContainmentResult(Verdict.NO_WITNESS_WITHIN_BOUND,
                                 explored_up_to=max_nodes, trees_checked=checked)


def random_witness_search(
    phi: NodeExpr,
    rng: random.Random,
    attempts: int = 2000,
    max_nodes: int = 12,
    edtd: EDTD | None = None,
    alphabet: Iterable[str] | None = None,
) -> SatResult:
    """Randomized witness search: samples larger trees than the exhaustive
    engine can afford.  Finding a witness is conclusive; not finding one is
    only evidence."""
    alphabet = list(alphabet) if alphabet is not None else relevant_alphabet(phi, edtd)
    with obs.span("bounded.random_search", attempts=attempts,
                  max_nodes=max_nodes):
        for attempt in range(attempts):
            if edtd is not None:
                tree = random_conforming_tree(edtd, rng, max_nodes=max_nodes)
            else:
                tree = random_tree(rng, max_nodes, alphabet)
            obs.count("trees.sampled")
            nodes = Evaluator(tree).nodes(phi)
            if nodes:
                return SatResult(Verdict.SATISFIABLE, tree, min(nodes),
                                 trees_checked=attempt + 1)
        return SatResult(Verdict.NO_WITNESS_WITHIN_BOUND, trees_checked=attempts)
