"""Schema sessions: batch-shared compiled-schema state.

A :class:`SchemaSession` owns the :class:`~repro.edtd.compiled
.CompiledSchema` for one *compiled schema* — the relevant-alphabet
partition the problems quotient the infinite label alphabet into, the
schema's content-model NFAs and realizability tables, the Fig. 2 type
frames, the Prop. 4/5 reduction frames, and the emptiness kernel's
:class:`~repro.automata.core.KernelCache` — and hands it to every engine
that solves a problem over that schema.  The artifact is built **once**
per ``schema_id`` (asserted by the ``schema.compile.count`` counter) and
every later problem with the same id reuses it.

Sessions are **worker-local**: the registry below is per-process, so each
forked :class:`~repro.parallel.runner.BatchRunner` worker grows its own
warm session per schema and nothing is ever shared (or pickled) across
processes.  Under the default ``fork`` start method the runner compiles
each schema in the parent *before* spawning workers, so children inherit
finished sessions and never compile at all.  The session's ``schema_id``
— a digest of the EDTD fingerprint and the relevant label alphabet —
also feeds the verdict cache fingerprint (schema v6), so cached verdicts
are keyed on exactly the compiled-schema identity the kernel memos
assume.

Fork hygiene: sessions are only published to the registry *after* their
compile completes, the registry lock is re-created in forked children
(the parent may have held it mid-compile when a worker forked), and
:func:`discard_incomplete_sessions` drops any session whose build was in
flight at fork time — so a terminated or freshly forked worker can never
observe a half-built session.  The registry is a bounded LRU
(:data:`MAX_SESSIONS`) so long-lived processes cannot grow it without
bound.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache

from .. import obs
from ..edtd.compiled import CompiledSchema, compile_schema
from ..xpath.ast import Expr
from .problems import Problem

__all__ = [
    "MAX_SESSIONS",
    "SchemaSession",
    "discard_incomplete_sessions",
    "registry_stats",
    "reset_sessions",
    "schema_id_of",
    "session_for",
]

#: Bounded-LRU capacity of the worker-local session registry.
MAX_SESSIONS = 32


@lru_cache(maxsize=1024)
def _schema_identity(exprs: tuple, edtd) -> tuple[str, tuple[str, ...]]:
    """``(schema_id, relevant alphabet)`` for ``exprs`` over ``edtd``.

    lru-cached on the (hash-consed) expression tuple and the EDTD's
    identity (:class:`~repro.edtd.EDTD` hashes by id), so the fingerprint
    JSON + SHA-256 work runs once per distinct problem shape instead of
    once per ``session_for``/verdict-cache/batch-gauge call.
    """
    from ..parallel.cache import _edtd_fingerprint
    from .engines import relevant_alphabet

    alphabet = tuple(relevant_alphabet(*exprs, edtd=edtd))
    payload = {
        "schema": _edtd_fingerprint(edtd),
        "alphabet": list(alphabet),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), alphabet


def schema_id_of(*exprs: Expr, edtd=None) -> str:
    """The compiled-schema id: a SHA-256 digest of the EDTD fingerprint
    (when present) and the relevant label alphabet of ``exprs``.

    Two problems get the same id exactly when they compile to the same
    alphabet partition over the same schema — the precondition for their
    engines to share a :class:`CompiledSchema` soundly (kernel base keys
    are global, so sharing is *correct* regardless; same-schema problems
    are the ones that actually hit).  The id depends only on the schema's
    *content* (fingerprint), so the same EDTD built through different
    construction orders yields the same id.
    """
    return _schema_identity(tuple(exprs), edtd)[0]


@dataclass
class SchemaSession:
    """Shared state for all problems of one batch over one schema.

    ``compiled`` is the per-schema :class:`CompiledSchema` artifact;
    engines consume its partition, type frames, schema tables, reduction
    frames and kernel cache instead of rebuilding them per problem.
    ``pattern_cache`` holds the ``patterns`` engine's *per-pattern*
    cover-search memos (:mod:`repro.analysis.patterns`) — per-query state
    that rides along with the session but is not part of the immutable
    schema artifact.
    """

    schema_id: str
    compiled: CompiledSchema | None = None
    pattern_cache: dict = field(default_factory=dict)
    problems_seen: int = 0

    def __post_init__(self) -> None:
        if self.compiled is None:
            # Bare construction (tests, ad-hoc callers): compile an empty
            # schemaless artifact so kernel_cache & co. always exist.
            self.compiled = compile_schema(self.schema_id)

    @property
    def kernel_cache(self):
        """The emptiness kernel's memo store (on the compiled artifact)."""
        return self.compiled.kernel_cache

    def stats(self) -> dict:
        """Cache sizes plus the number of problems that used the session."""
        return {"problems": self.problems_seen,
                "pattern_entries": len(self.pattern_cache),
                "compile_s": self.compiled.compile_s,
                **self.kernel_cache.stats()}


#: Worker-local session registry (LRU order: oldest first); forked
#: workers inherit the parent's finished sessions and prune in-flight
#: ones via :func:`discard_incomplete_sessions`.
_SESSIONS: "OrderedDict[str, SchemaSession]" = OrderedDict()
_LOCK = threading.Lock()
#: Schema ids whose compile is in flight in *this* process.
_BUILDING: set[str] = set()
#: Lifetime registry counters (this process), independent of any obs
#: recording: the ``repro serve`` daemon's ``/stats`` endpoint reports
#: these so a warm pass can be asserted compile-free from outside the
#: process.  NOT reset by :func:`reset_sessions` — they count forever.
_STATS = {"created": 0, "reused": 0, "evicted": 0}


def session_for(problem: Problem) -> SchemaSession:
    """The worker-local session for ``problem``'s compiled schema
    (compiled on first use, reused afterwards, LRU-evicted beyond
    :data:`MAX_SESSIONS`)."""
    exprs = tuple(problem.expressions())
    schema_id, alphabet = _schema_identity(exprs, problem.edtd)
    with _LOCK:
        session = _SESSIONS.get(schema_id)
        if session is not None:
            _SESSIONS.move_to_end(schema_id)
            session.problems_seen += 1
            _STATS["reused"] += 1
            obs.count("analysis.session.reused")
            obs.count("schema.compile.cache_hit")
            return session
        _BUILDING.add(schema_id)
        try:
            compiled = compile_schema(schema_id, exprs, problem.edtd,
                                      alphabet=alphabet)
            session = SchemaSession(schema_id, compiled=compiled)
            session.problems_seen = 1
            _SESSIONS[schema_id] = session
        finally:
            _BUILDING.discard(schema_id)
        while len(_SESSIONS) > MAX_SESSIONS:
            _SESSIONS.popitem(last=False)
            _STATS["evicted"] += 1
            obs.count("analysis.session.evicted")
        _STATS["created"] += 1
        obs.count("analysis.session.created")
        return session


def registry_stats() -> dict:
    """Resident-session count plus lifetime created/reused/evicted
    counters for this process (see :data:`_STATS`)."""
    with _LOCK:
        return {"resident": len(_SESSIONS), **_STATS}


def reset_sessions() -> None:
    """Drop all worker-local sessions (pool shutdown; tests; long-lived
    processes that want to bound memory)."""
    with _LOCK:
        _SESSIONS.clear()
        _BUILDING.clear()
    _schema_identity.cache_clear()


def discard_incomplete_sessions() -> None:
    """Drop any session whose compile was in flight when this process
    forked.  Builds are only published after completion, so the window is
    the insert-to-discard gap in :func:`session_for`; pruning both sides
    guarantees a child never observes a half-built session."""
    for schema_id in list(_BUILDING):
        _SESSIONS.pop(schema_id, None)
    _BUILDING.clear()


def _after_fork_in_child() -> None:
    # The parent may have held _LOCK mid-compile at fork time; a child
    # inheriting a locked Lock would deadlock on first session_for.
    global _LOCK
    _LOCK = threading.Lock()
    discard_incomplete_sessions()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_after_fork_in_child)
