"""Schema sessions: batch-shared compiled-schema state.

The bitset emptiness kernel's relation algebra keys every memo on the
process-global :func:`~repro.automata.core.automaton_base_key`, so closure
and excursion results computed for one problem are valid for every later
problem whose 2ATA shares path-automaton bases — which is the common case
inside a batch over one schema, where problems mention the same labels and
reuse the same axis sub-automata.  A :class:`SchemaSession` owns the
:class:`~repro.automata.core.KernelCache` for one *compiled schema* (the
alphabet partition the problems quotient the infinite label alphabet
into, plus the EDTD when there is one) and hands it to every emptiness
check over that schema.

Sessions are **worker-local**: the registry below is a plain module-level
dict, so each forked :class:`~repro.parallel.runner.BatchRunner` worker
grows its own warm session per schema and nothing is ever shared (or
pickled) across processes.  The session's ``schema_id`` — a digest of the
EDTD fingerprint and the relevant label alphabet — also feeds the verdict
cache fingerprint (schema v4), so cached verdicts are keyed on exactly
the compiled-schema identity the kernel memos assume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .. import obs
from ..automata.core import KernelCache
from ..xpath.ast import Expr
from .problems import Problem

__all__ = ["SchemaSession", "schema_id_of", "session_for", "reset_sessions"]


def schema_id_of(*exprs: Expr, edtd=None) -> str:
    """The compiled-schema id: a SHA-256 digest of the EDTD fingerprint
    (when present) and the relevant label alphabet of ``exprs``.

    Two problems get the same id exactly when they compile to the same
    alphabet partition over the same schema — the precondition for their
    emptiness checks to share a :class:`KernelCache` soundly (base keys
    are global, so sharing is *correct* regardless; same-schema problems
    are the ones that actually hit).
    """
    from ..parallel.cache import _edtd_fingerprint
    from .engines import relevant_alphabet

    payload = {
        "schema": _edtd_fingerprint(edtd),
        "alphabet": relevant_alphabet(*exprs, edtd=edtd),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class SchemaSession:
    """Shared state for all problems of one batch over one schema.

    ``kernel_cache`` is threaded into
    :func:`~repro.automata.emptiness.decide_emptiness` (``shared=``) by the
    ``automata`` engine, so saturation memos survive across the problems
    of the session instead of being rebuilt per check.  ``pattern_cache``
    plays the same role for the ``patterns`` engine where a DTD restricts
    labels: it holds the per-schema realizability/reachability tables and
    the per-pattern cover-search memos
    (:mod:`repro.analysis.patterns`), so repeated pattern
    satisfiability checks over one schema reuse each other's work.
    """

    schema_id: str
    kernel_cache: KernelCache = field(default_factory=KernelCache)
    pattern_cache: dict = field(default_factory=dict)
    problems_seen: int = 0

    def stats(self) -> dict[str, int]:
        """Cache sizes plus the number of problems that used the session."""
        return {"problems": self.problems_seen,
                "pattern_entries": len(self.pattern_cache),
                **self.kernel_cache.stats()}


#: Worker-local session registry; forked workers each start empty.
_SESSIONS: dict[str, SchemaSession] = {}


def session_for(problem: Problem) -> SchemaSession:
    """The worker-local session for ``problem``'s compiled schema
    (created on first use)."""
    schema_id = schema_id_of(*problem.expressions(), edtd=problem.edtd)
    session = _SESSIONS.get(schema_id)
    if session is None:
        session = SchemaSession(schema_id)
        _SESSIONS[schema_id] = session
        obs.count("analysis.session.created")
    else:
        obs.count("analysis.session.reused")
    session.problems_seen += 1
    return session


def reset_sessions() -> None:
    """Drop all worker-local sessions (tests; long-lived processes that
    want to bound memory)."""
    _SESSIONS.clear()
