"""The ``patterns`` engine: polynomial containment for downward tree patterns.

The bottom rung of the engine ladder (DESIGN.md §12).  The paper's upper
bounds are EXPTIME-or-worse, but the positive downward tree-pattern
fragment — child/descendant steps, label tests, filter conjunction; no
negation, union, ≈, or upward/sibling axes — that most corpus queries fall
into admits homomorphism-style checks (Miklau–Suciu; see Neven–Schwentick
and Facchini et al. in PAPERS.md):

* **Containment** ``α ⊑ β`` is decided by first searching for a pattern
  homomorphism ``β → α`` (root to root, output to output, labels
  preserved, child edges onto child edges, descendant-or-self edges onto
  downward pattern paths) with a memoized node-pair table.  A
  homomorphism is a *proof* of containment.  When none exists, the
  canonical-model theorem closes the gap homomorphisms famously leave
  open in the presence of wildcards: ``α ⊑ β`` iff the distinguished pair
  of every canonical model of ``α`` — flexible edges expanded to chains
  of fresh-labelled nodes of every length up to ``|β| + 1`` — lies in
  ``[[β]]``.  The enumeration is exponential only in the number of
  flexible edges of ``α``; past :attr:`PatternsEngine.max_models` the
  engine declines at runtime and the registry falls through to
  ``automata``.

* **Satisfiability** without a schema is immediate: a pattern is
  unsatisfiable iff some node demands two distinct labels; otherwise its
  own instantiation (flexible edges at length 1) is a witness.  Under an
  EDTD the engine runs a memoized cover search (:class:`_CoverSearch`)
  over the schema's content-model NFAs — NP-hard in general, so the
  search carries a step budget and declines past it (``expspace`` picks
  the problem up).

Every positive verdict is self-validating, exactly like the ``automata``
engine: witness trees and counterexample pairs are re-checked with a
compiled :class:`~repro.semantics.plan.Plan` (plus
:meth:`~repro.edtd.EDTD.conforms` under a schema) before being returned,
so a checker bug surfaces as a loud ``RuntimeError`` rather than a quietly
wrong verdict.

Observability: ``patterns.admitted`` / ``patterns.declined`` count
fragment admission at solve time, ``patterns.embeddings`` counts
homomorphism searches and ``patterns.table_cells`` the memoized node-pair
cells they filled; ``patterns.models`` counts canonical models checked and
``patterns.cover.steps`` the schema cover-search work.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from .. import obs
from ..edtd import EDTD
from ..edtd.compiled import SchemaTables
from ..semantics import TreeContext, compile_plan
from ..trees import XMLTree
from ..xpath.fragments import (
    EDGE_CHILD,
    EDGE_DESC_SELF,
    TreePattern,
    compile_pattern,
)
from .problems import ContainmentResult, Problem, ProblemKind, SatResult, Verdict
from .reductions import fresh_label
from .registry import Engine, default_registry

__all__ = ["PatternsEngine"]


# ------------------------------------------------------------ instantiation


def instantiate(pattern: TreePattern, lengths: dict[tuple[int, int], int],
                fill: str) -> tuple[XMLTree, dict[int, int]] | None:
    """The model of ``pattern`` where flexible edge ``(v, i)`` expands to a
    downward path of ``lengths[(v, i)]`` tree edges (0 merges the two
    endpoints); chain interiors and unlabelled nodes carry ``fill``.

    Returns ``(tree, pos)`` with ``pos`` mapping pattern nodes to tree
    nodes, or ``None`` when a zero-length merge forces two distinct labels
    onto one tree node (the assignment denotes no model).
    """
    n = pattern.size
    rep = list(range(n))

    def find(x: int) -> int:
        while rep[x] != x:
            rep[x] = rep[rep[x]]
            x = rep[x]
        return x

    for v, i in pattern.desc_edges():
        if lengths[(v, i)] == 0:
            _, w = pattern.edges[v][i]
            rep[find(w)] = find(v)

    members: dict[int, list[int]] = {}
    for v in range(n):
        members.setdefault(find(v), []).append(v)
    group_label: dict[int, str] = {}
    for group, nodes in members.items():
        required = frozenset().union(*(pattern.labels[v] for v in nodes))
        if len(required) > 1:
            return None
        group_label[group] = next(iter(required)) if required else fill

    # Surviving edges between groups: (chain length >= 1, child group).
    out_edges: dict[int, list[tuple[int, int]]] = {g: [] for g in members}
    for v in range(n):
        for i, (kind, w) in enumerate(pattern.edges[v]):
            length = 1 if kind == EDGE_CHILD else lengths[(v, i)]
            if length > 0:
                out_edges[find(v)].append((length, find(w)))

    labels: list[str] = []
    parents: list[int | None] = []
    pos: dict[int, int] = {}
    stack = [(find(pattern.root), None)]
    while stack:
        group, parent = stack.pop()
        idx = len(labels)
        labels.append(group_label[group])
        parents.append(parent)
        for v in members[group]:
            pos[v] = idx
        for length, child in reversed(out_edges[group]):
            cur = idx
            for _ in range(length - 1):
                labels.append(fill)
                parents.append(cur)
                cur = len(labels) - 1
            stack.append((child, cur))
    return XMLTree(labels, parents), pos


# ------------------------------------------------------------- homomorphism


def embeds(beta: TreePattern, alpha: TreePattern) -> bool:
    """Is there a homomorphism ``β → α``?  Root maps to root, output node
    to output node, labels are preserved, child edges land on child edges
    and descendant-or-self edges on arbitrary downward ``α``-paths.  A
    homomorphism proves ``α ⊑ β`` on every tree."""
    obs.count("patterns.embeddings")

    # desc0[v]: every α node reachable downward from v (any edge kinds) —
    # the nodes guaranteed to lie at-or-below v's image in every model.
    reach: list[frozenset[int]] = []
    for v in range(alpha.size):
        seen = {v}
        frontier = [v]
        while frontier:
            x = frontier.pop()
            for _, w in alpha.edges[x]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        reach.append(frozenset(seen))

    memo: dict[tuple[int, int], bool] = {}

    def match(u: int, v: int) -> bool:
        if u == beta.out and v != alpha.out:
            return False
        key = (u, v)
        cached = memo.get(key)
        if cached is not None:
            return cached
        obs.count("patterns.table_cells")
        ok = beta.labels[u] <= alpha.labels[v]
        if ok:
            for kind, u2 in beta.edges[u]:
                if kind == EDGE_CHILD:
                    ok = any(k2 == EDGE_CHILD and match(u2, v2)
                             for k2, v2 in alpha.edges[v])
                else:
                    ok = any(match(u2, v2) for v2 in reach[v])
                if not ok:
                    break
        memo[key] = ok
        return ok

    return match(beta.root, alpha.root)


# ------------------------------------------------------ schema cover search


class _CoverBudget(Exception):
    """The cover search exhausted its step budget (engine declines)."""


#: ``(label, [child specs...])`` as accepted by :meth:`XMLTree.build`.
_Spec = tuple


def _subsets(nodes: frozenset[int]) -> Iterator[frozenset[int]]:
    ordered = sorted(nodes)
    for r in range(len(ordered) + 1):
        for combo in itertools.combinations(ordered, r):
            yield frozenset(combo)


# The per-EDTD realizability/reachability fixpoints moved into the
# compile-once schema artifact (one instance per schema, shared by every
# problem of a batch); the old private name stays importable.
_SchemaTables = SchemaTables


class _CoverSearch:
    """Memoized embedding search for one pattern against one EDTD.

    ``cover(G, B, t)`` asks: is there a conforming subtree of abstract
    type ``t`` such that every pattern node in ``G`` embeds *at* its root
    and every node in ``B`` embeds at-or-below some strict descendant
    position?  Successful keys memoize their witness spec; the
    ``visiting`` set cuts derivation cycles (a minimal witness never
    repeats a ``(G, B, t)`` key along a root path, so the cut preserves
    completeness), and every expansion step draws down a shared budget —
    exhausting it aborts the solve and the engine declines.
    """

    def __init__(self, pattern: TreePattern, tables: _SchemaTables,
                 budget: int):
        self.pattern = pattern
        self.tables = tables
        self.budget = budget
        self.steps = 0
        self.memo: dict[tuple, _Spec] = {}
        self.visiting: set[tuple] = set()

    def _tick(self) -> None:
        self.steps += 1
        obs.count("patterns.cover.steps")
        if self.steps > self.budget:
            raise _CoverBudget

    def cover(self, G: frozenset[int], B: frozenset[int],
              t: str) -> _Spec | None:
        key = (G, B, t)
        if key in self.memo:
            return self.memo[key]
        if key in self.visiting:
            return None
        self._tick()
        pattern, edtd = self.pattern, self.tables.edtd
        self.visiting.add(key)
        try:
            for b_here in _subsets(B):
                b_rest = B - b_here
                for residents in self._merges(G | b_here):
                    required = frozenset().union(
                        *(pattern.labels[v] for v in residents)) \
                        if residents else frozenset()
                    if len(required) > 1:
                        continue
                    if required and next(iter(required)) != edtd.projection[t]:
                        continue
                    child_demand = frozenset(
                        w for v in residents
                        for kind, w in pattern.edges[v]
                        if kind == EDGE_CHILD)
                    below_demand = b_rest | frozenset(
                        w for v in residents
                        for kind, w in pattern.edges[v]
                        if kind == EDGE_DESC_SELF and w not in residents)
                    children = self._word(t, child_demand, below_demand)
                    if children is not None:
                        spec = (edtd.projection[t], children)
                        self.memo[key] = spec
                        return spec
            return None
        finally:
            self.visiting.discard(key)

    def _merges(self, base: frozenset[int]) -> Iterator[frozenset[int]]:
        """All resident sets obtainable from ``base`` by repeatedly merging
        targets of descendant-or-self edges at length 0."""
        seen = {base}
        queue = [base]
        while queue:
            residents = queue.pop(0)
            yield residents
            for v in sorted(residents):
                for kind, w in self.pattern.edges[v]:
                    if kind == EDGE_DESC_SELF and w not in residents:
                        grown = residents | {w}
                        if grown not in seen:
                            seen.add(grown)
                            queue.append(grown)

    def _word(self, t: str, child_demand: frozenset[int],
              below_demand: frozenset[int]) -> list[_Spec] | None:
        """A content word for ``P(t)`` discharging every demand: each
        child-demanded pattern node resides at the root of exactly one
        child subtree, each below-demanded node embeds within one."""
        nfa = self.tables.edtd.content_nfa(t)
        letters = sorted(self.minimal_letters())
        start = (frozenset(nfa.initial), child_demand, below_demand)
        parents: dict[tuple, tuple | None] = {start: None}
        queue = [start]
        while queue:
            state = queue.pop(0)
            states, remaining_child, remaining_below = state
            if not remaining_child and not remaining_below \
                    and states & nfa.accepting:
                children: list[_Spec] = []
                cur = parents[state]
                node = state
                while cur is not None:
                    children.append(cur[1])
                    node = cur[0]
                    cur = parents[node]
                children.reverse()
                return children
            self._tick()
            for letter in letters:
                step = frozenset().union(
                    *(nfa.successors(q, letter) for q in states))
                if not step:
                    continue
                for cg in _subsets(remaining_child):
                    for bl in _subsets(remaining_below):
                        if cg or bl:
                            spec = self.cover(cg, bl, letter)
                            if spec is None:
                                continue
                        else:
                            spec = self.tables.minimal[letter]
                        nxt = (step, remaining_child - cg,
                               remaining_below - bl)
                        if nxt not in parents:
                            parents[nxt] = (state, spec)
                            queue.append(nxt)
        return None

    def minimal_letters(self) -> frozenset[str]:
        return frozenset(self.tables.minimal)


# ------------------------------------------------------------------ engine


class PatternsEngine(Engine):
    """Homomorphism containment for positive downward tree patterns."""

    name = "patterns"
    conclusive = True
    cost_hint = 5

    #: Canonical-model enumeration cap: past it (many flexible edges on a
    #: large right-hand side) the engine declines and ``automata`` takes
    #: the containment.
    max_models = 4096
    #: Schema cover-search step budget; past it the engine declines and
    #: ``expspace`` takes the satisfiability problem.
    max_cover_steps = 20_000

    def admits(self, problem: Problem) -> bool:
        if problem.kind is ProblemKind.SATISFIABILITY:
            return compile_pattern(problem.phi) is not None
        if problem.kind is ProblemKind.CONTAINMENT:
            # Containment under an EDTD needs schema-aware canonical
            # models; that is ``expspace`` territory.
            return (problem.edtd is None
                    and compile_pattern(problem.alpha) is not None
                    and compile_pattern(problem.beta) is not None)
        return False

    def solve(self, problem: Problem,
              session=None) -> SatResult | ContainmentResult | None:
        obs.note("engine", self.name)
        with obs.span("patterns.solve", kind=problem.kind.value):
            return self._solve(problem, session)

    def _solve(self, problem: Problem,
               session=None) -> SatResult | ContainmentResult | None:
        if problem.kind is ProblemKind.SATISFIABILITY:
            pattern = compile_pattern(problem.phi)
            if pattern is None:
                obs.count("patterns.declined")
                return None
            obs.count("patterns.admitted")
            if problem.edtd is None:
                result = self._sat_schemaless(pattern, problem)
            else:
                result = self._sat_schema(pattern, problem, session)
        elif problem.kind is ProblemKind.CONTAINMENT and problem.edtd is None:
            alpha = compile_pattern(problem.alpha)
            beta = compile_pattern(problem.beta)
            if alpha is None or beta is None:
                obs.count("patterns.declined")
                return None
            obs.count("patterns.admitted")
            result = self._containment(alpha, beta, problem)
        else:
            obs.count("patterns.declined")
            return None
        if result is None:
            obs.count("patterns.declined")
            return None
        obs.count(f"dispatch.{self.name}")
        return result

    # ------------------------------------------------------- satisfiability

    def _sat_schemaless(self, pattern: TreePattern,
                        problem: Problem) -> SatResult:
        if pattern.conflicted:
            return SatResult(Verdict.UNSATISFIABLE)
        fill = fresh_label(pattern.all_labels)
        lengths = {edge: 1 for edge in pattern.desc_edges()}
        built = instantiate(pattern, lengths, fill)
        assert built is not None  # length-1 expansion never merges
        tree, pos = built
        node = pos[pattern.root]
        self._verify_sat(problem, tree, node)
        return SatResult(Verdict.SATISFIABLE, tree, node,
                         explored_up_to=tree.size, trees_checked=1)

    def _sat_schema(self, pattern: TreePattern, problem: Problem,
                    session=None) -> SatResult | None:
        if pattern.conflicted:
            return SatResult(Verdict.UNSATISFIABLE)
        from .session import session_for

        assert problem.edtd is not None
        if session is None:
            session = session_for(problem)
        # The realizability fixpoints live on the compile-once schema
        # artifact; only the per-pattern cover memos are session state.
        tables = session.compiled.schema_tables()
        cache = session.pattern_cache
        if not tables.reach:  # no conforming documents at all
            return SatResult(Verdict.UNSATISFIABLE)
        search = cache.get(("cover", pattern))
        if search is None:
            search = cache[("cover", pattern)] = _CoverSearch(
                pattern, tables, self.max_cover_steps)
        search.steps = 0  # budget is per solve; memo persists
        try:
            for t in sorted(tables.reach):
                spec = search.cover(frozenset({pattern.root}), frozenset(), t)
                if spec is None:
                    continue
                full, path = tables.context(t, spec)
                tree = XMLTree.build(full)
                node = 0
                for index in path:
                    node = tree.children(node)[index]
                if not problem.edtd.conforms(tree):
                    raise RuntimeError(
                        "patterns engine built a non-conforming witness")
                self._verify_sat(problem, tree, node)
                return SatResult(Verdict.SATISFIABLE, tree, node,
                                 explored_up_to=tree.size, trees_checked=1)
            return SatResult(Verdict.UNSATISFIABLE)
        except _CoverBudget:
            return None

    def _verify_sat(self, problem: Problem, tree: XMLTree, node: int) -> None:
        assert problem.phi is not None
        satisfied = compile_plan(problem.phi).run_single(TreeContext(tree))
        if node not in satisfied:
            raise RuntimeError(
                f"patterns witness does not satisfy the formula at {node}")

    # ----------------------------------------------------------- containment

    def _containment(self, alpha: TreePattern, beta: TreePattern,
                     problem: Problem) -> ContainmentResult | None:
        if alpha.conflicted:
            # [[α]] is empty on every tree: containment holds vacuously.
            return ContainmentResult(Verdict.UNSATISFIABLE)
        if embeds(beta, alpha):
            return ContainmentResult(Verdict.UNSATISFIABLE)
        flexible = alpha.desc_edges()
        bound = beta.size + 1
        if (bound + 1) ** len(flexible) > self.max_models:
            return None
        fill = fresh_label(alpha.all_labels | beta.all_labels)
        assert problem.alpha is not None and problem.beta is not None
        plan = compile_plan(problem.alpha, problem.beta)
        checked = 0
        assignments = sorted(
            itertools.product(range(bound + 1), repeat=len(flexible)),
            key=lambda lengths: (sum(lengths), lengths))
        for assignment in assignments:
            built = instantiate(alpha, dict(zip(flexible, assignment)), fill)
            if built is None:
                continue  # merge conflict: the assignment denotes no model
            tree, pos = built
            checked += 1
            obs.count("patterns.models")
            in_alpha, in_beta = plan.run(TreeContext(tree))
            source, target = pos[alpha.root], pos[alpha.out]
            if target not in in_alpha.get(source, frozenset()):
                raise RuntimeError(
                    "patterns canonical model does not satisfy α")
            if target not in in_beta.get(source, frozenset()):
                return ContainmentResult(
                    Verdict.SATISFIABLE, tree, (source, target),
                    explored_up_to=tree.size, trees_checked=checked)
        return ContainmentResult(Verdict.UNSATISFIABLE,
                                 trees_checked=checked)


default_registry().register(PatternsEngine())
