"""Top-level static-analysis API: satisfiability, containment, equivalence.

Dispatches per fragment:

* CoreXPath↓(∩) inputs (the EXPSPACE row of Table I) go to the complete
  Figure 2 procedure (:mod:`repro.analysis.expspace`), via the Prop. 4/5
  reductions when the problem arrives as containment or without a schema.
  Verdicts from this engine are always conclusive.
* Everything else goes to the bounded model-search engine
  (:mod:`repro.analysis.engines`), the documented substitute for the paper's
  2-EXPTIME/non-elementary procedures: witnesses are conclusive, "no witness
  up to n nodes" is exact but bounded.

Every public entry point takes ``stats=True`` to wrap the run in a
:mod:`repro.obs` recording: the returned result then carries a
``RunRecord`` dict (engine chosen, verdict, per-span timings, counters)
in its ``stats`` field.
"""

from __future__ import annotations

from .. import obs
from ..edtd import EDTD
from ..xpath.ast import Expr, NodeExpr, PathExpr
from ..xpath.fragments import DOWNWARD_CAP, fragment_of
from ..xpath.measures import labels_used, size
from .engines import DEFAULT_MAX_NODES, check_containment, node_satisfiable
from .expspace import TooManyModalAtoms, downward_cap_satisfiable
from .problems import ContainmentResult, SatResult, Verdict
from .reductions import containment_to_node_unsat, sat_to_edtd_sat

__all__ = ["satisfiable", "contains", "equivalent"]

#: Engine names reported in run records and dispatch counters.
ENGINE_EXPSPACE = "expspace"
ENGINE_BOUNDED = "bounded"


def _input_info(edtd: EDTD | None, **exprs: Expr) -> dict:
    """Size/fragment/alphabet measures of the inputs, for run records."""
    info: dict = {}
    labels: set[str] = set()
    for name, expr in exprs.items():
        info[f"{name}_size"] = size(expr)
        info[f"{name}_fragment"] = fragment_of(expr).name
        labels |= labels_used(expr)
    info["labels"] = len(labels)
    info["schema"] = edtd is not None
    return info


def _dispatched(engine: str) -> None:
    """Record which engine a (sub-)problem went to."""
    obs.note("engine", engine)
    obs.count(f"dispatch.{engine}")


def _try_expspace(phi: NodeExpr, edtd: EDTD | None) -> SatResult | None:
    """Run the complete Figure 2 engine if the input fits its fragment."""
    if not DOWNWARD_CAP.admits(phi):
        return None
    if edtd is None:
        reduction = sat_to_edtd_sat(phi)
        if not DOWNWARD_CAP.admits(reduction.formula):
            return None
        try:
            inner = downward_cap_satisfiable(reduction.formula, reduction.edtd)
        except TooManyModalAtoms:
            obs.count("dispatch.expspace_too_large")
            return None
        if inner.verdict is Verdict.SATISFIABLE:
            tree, node = reduction.decode(inner.witness, inner.witness_node)
            return SatResult(Verdict.SATISFIABLE, tree, node,
                             explored_up_to=tree.size,
                             trees_checked=inner.trees_checked)
        return inner
    try:
        return downward_cap_satisfiable(phi, edtd)
    except TooManyModalAtoms:
        obs.count("dispatch.expspace_too_large")
        return None


def satisfiable(
    phi: NodeExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> SatResult:
    """Node satisfiability (§2.3), optionally w.r.t. an EDTD.

    ``method``: ``"auto"`` picks the complete Figure 2 engine when the input
    is CoreXPath↓(∩) (conclusive verdicts), else falls back to bounded
    search; ``"expspace"`` forces the former (raises if inapplicable);
    ``"bounded"`` forces the latter.  ``stats=True`` attaches a
    :mod:`repro.obs` run record to the result.
    """
    if method not in ("auto", "expspace", "bounded"):
        raise ValueError(f"unknown method {method!r}")
    if not stats:
        return _satisfiable_impl(phi, edtd, method, max_nodes)
    with obs.record("satisfiable") as recording:
        recording.note("command", "satisfiable")
        recording.note("method", method)
        recording.note("inputs", _input_info(edtd, phi=phi))
        result = _satisfiable_impl(phi, edtd, method, max_nodes)
        recording.note("verdict", result.verdict.value)
        recording.note("conclusive", result.conclusive)
    return result.with_stats(recording.to_run_record().to_dict())


def _satisfiable_impl(
    phi: NodeExpr,
    edtd: EDTD | None,
    method: str,
    max_nodes: int,
) -> SatResult:
    if method in ("auto", "expspace"):
        with obs.span("dispatch", problem="satisfiable"):
            result = _try_expspace(phi, edtd)
        if result is not None:
            _dispatched(ENGINE_EXPSPACE)
            return result
        if method == "expspace":
            raise ValueError(
                "the Figure 2 engine needs a CoreXPath↓(∩) input "
                f"(violations: {DOWNWARD_CAP.violations(phi)})"
            )
    _dispatched(ENGINE_BOUNDED)
    return node_satisfiable(phi, max_nodes=max_nodes, edtd=edtd)


def contains(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> ContainmentResult:
    """Path containment ``α ⊑ β`` (§2.3), optionally w.r.t. an EDTD.

    With ``method="auto"``, downward-∩ inputs are decided conclusively via
    the Prop. 4 reduction into the Figure 2 engine; other inputs are checked
    by exhaustive counterexample search up to ``max_nodes``.  ``stats=True``
    attaches a :mod:`repro.obs` run record to the result.
    """
    if method not in ("auto", "expspace", "bounded"):
        raise ValueError(f"unknown method {method!r}")
    if not stats:
        return _contains_impl(alpha, beta, edtd, method, max_nodes)
    with obs.record("contains") as recording:
        recording.note("command", "contains")
        recording.note("method", method)
        recording.note("inputs", _input_info(edtd, alpha=alpha, beta=beta))
        result = _contains_impl(alpha, beta, edtd, method, max_nodes)
        recording.note("verdict", result.verdict.value)
        recording.note("conclusive", result.conclusive)
    return result.with_stats(recording.to_run_record().to_dict())


def _contains_impl(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None,
    method: str,
    max_nodes: int,
) -> ContainmentResult:
    if method in ("auto", "expspace"):
        with obs.span("dispatch", problem="contains"):
            reduction = containment_to_node_unsat(alpha, beta, edtd)
            result = _try_expspace(reduction.formula, reduction.edtd)
        if result is not None:
            _dispatched(ENGINE_EXPSPACE)
            if result.verdict is Verdict.SATISFIABLE:
                tree, pair = reduction.decode(result.witness, result.witness_node)
                return ContainmentResult(Verdict.SATISFIABLE, tree, pair,
                                         explored_up_to=tree.size,
                                         trees_checked=result.trees_checked)
            return ContainmentResult(Verdict.UNSATISFIABLE,
                                     trees_checked=result.trees_checked)
        if method == "expspace":
            raise ValueError(
                "the Figure 2 engine needs CoreXPath↓(∩) inputs"
            )
    _dispatched(ENGINE_BOUNDED)
    return check_containment(alpha, beta, max_nodes=max_nodes, edtd=edtd)


def equivalent(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> ContainmentResult:
    """Two-sided containment.  Returns the first failing direction's result
    (or the weaker of the two positive verdicts)."""
    if method not in ("auto", "expspace", "bounded"):
        raise ValueError(f"unknown method {method!r}")
    if not stats:
        return _equivalent_impl(alpha, beta, edtd, method, max_nodes)
    with obs.record("equivalent") as recording:
        recording.note("command", "equivalent")
        recording.note("method", method)
        recording.note("inputs", _input_info(edtd, alpha=alpha, beta=beta))
        result = _equivalent_impl(alpha, beta, edtd, method, max_nodes)
        recording.note("verdict", result.verdict.value)
        recording.note("conclusive", result.conclusive)
    return result.with_stats(recording.to_run_record().to_dict())


def _equivalent_impl(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None,
    method: str,
    max_nodes: int,
) -> ContainmentResult:
    with obs.span("direction", which="forward"):
        forward = _contains_impl(alpha, beta, edtd, method, max_nodes)
    if forward.verdict is Verdict.SATISFIABLE:
        return forward
    with obs.span("direction", which="backward"):
        backward = _contains_impl(beta, alpha, edtd, method, max_nodes)
    if backward.verdict is Verdict.SATISFIABLE:
        return backward
    weaker = Verdict.UNSATISFIABLE
    if Verdict.NO_WITNESS_WITHIN_BOUND in (forward.verdict, backward.verdict):
        weaker = Verdict.NO_WITNESS_WITHIN_BOUND
    return ContainmentResult(
        weaker,
        explored_up_to=min(filter(None, (forward.explored_up_to,
                                         backward.explored_up_to)), default=None),
        trees_checked=forward.trees_checked + backward.trees_checked,
    )
