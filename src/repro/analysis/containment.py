"""Top-level static-analysis API: satisfiability, containment, equivalence.

These are thin wrappers: each builds a
:class:`~repro.analysis.problems.Problem` and hands it to the engine
registry (:func:`repro.analysis.registry.plan_and_run`).  Which procedure
runs — the complete Figure 2 EXPSPACE engine, bounded model search,
randomized sampling — is decided entirely by the registered engines'
``admits``/``cost_hint`` declarations; no engine-specific branching lives
here.  The chosen engine and the full candidate decision are part of the
run record.

Every public entry point takes ``stats=True`` to wrap the run in a
:mod:`repro.obs` recording: the returned result then carries a
``RunRecord`` dict (engine decision, verdict, per-span timings, counters)
in its ``stats`` field.  The ``method`` keyword is the historical name for
an engine preference: ``"auto"`` lets the registry choose, any registered
engine name forces that engine (the CLI exposes this as ``--engine``).
"""

from __future__ import annotations

from .. import obs
from ..edtd import EDTD
from ..xpath.ast import Expr, NodeExpr, PathExpr
from ..xpath.fragments import fragment_of
from ..xpath.measures import labels_used, size
from .problems import (
    DEFAULT_MAX_NODES,
    ContainmentResult,
    Problem,
    ProblemKind,
    SatResult,
)
from .registry import default_registry

__all__ = ["satisfiable", "contains", "equivalent"]


def _input_info(edtd: EDTD | None, **exprs: Expr) -> dict:
    """Size/fragment/alphabet measures of the inputs, for run records."""
    info: dict = {}
    labels: set[str] = set()
    for name, expr in exprs.items():
        info[f"{name}_size"] = size(expr)
        info[f"{name}_fragment"] = fragment_of(expr).name
        labels |= labels_used(expr)
    info["labels"] = len(labels)
    info["schema"] = edtd is not None
    return info


def _engine_preference(method: str) -> str | None:
    """Map the ``method`` keyword to an engine preference, validating the
    name against the registry."""
    if method == "auto":
        return None
    registry = default_registry()
    if method not in registry.names():
        raise ValueError(
            f"unknown method {method!r} (expected 'auto' or one of: "
            f"{', '.join(registry.names())})"
        )
    return method


def _solve(problem: Problem, command: str, stats: bool,
           **inputs: Expr) -> SatResult | ContainmentResult:
    if not stats:
        return default_registry().plan_and_run(problem)
    with obs.record(command) as recording:
        recording.note("command", command)
        recording.note("method", problem.engine or "auto")
        recording.note("inputs", _input_info(problem.edtd, **inputs))
        result = default_registry().plan_and_run(problem)
        recording.note("verdict", result.verdict.value)
        recording.note("conclusive", result.conclusive)
    return result.with_stats(recording.to_run_record().to_dict())


def satisfiable(
    phi: NodeExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> SatResult:
    """Node satisfiability (§2.3), optionally w.r.t. an EDTD.

    ``method``: ``"auto"`` lets the registry pick the cheapest conclusive
    engine that admits the input (the complete Figure 2 engine for
    CoreXPath↓(∩), bounded search otherwise); an engine name forces that
    engine (raising if it cannot take the input).  ``stats=True`` attaches
    a :mod:`repro.obs` run record to the result.
    """
    problem = Problem(ProblemKind.SATISFIABILITY, phi=phi, edtd=edtd,
                      max_nodes=max_nodes, engine=_engine_preference(method))
    result = _solve(problem, "satisfiable", stats, phi=phi)
    assert isinstance(result, SatResult)
    return result


def contains(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> ContainmentResult:
    """Path containment ``α ⊑ β`` (§2.3), optionally w.r.t. an EDTD.

    With ``method="auto"``, downward-∩ inputs are decided conclusively via
    the Prop. 4 reduction into the Figure 2 engine; other inputs are checked
    by exhaustive counterexample search up to ``max_nodes``.  ``stats=True``
    attaches a :mod:`repro.obs` run record to the result.
    """
    problem = Problem(ProblemKind.CONTAINMENT, alpha=alpha, beta=beta,
                      edtd=edtd, max_nodes=max_nodes,
                      engine=_engine_preference(method))
    result = _solve(problem, "contains", stats, alpha=alpha, beta=beta)
    assert isinstance(result, ContainmentResult)
    return result


def equivalent(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
    stats: bool = False,
) -> ContainmentResult:
    """Two-sided containment.  Returns the first failing direction's result
    (or, when both directions hold, an aggregate whose ``per_direction``
    field carries the exact per-direction figures)."""
    problem = Problem(ProblemKind.EQUIVALENCE, alpha=alpha, beta=beta,
                      edtd=edtd, max_nodes=max_nodes,
                      engine=_engine_preference(method))
    result = _solve(problem, "equivalent", stats, alpha=alpha, beta=beta)
    assert isinstance(result, ContainmentResult)
    return result
