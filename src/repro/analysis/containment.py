"""Top-level static-analysis API: satisfiability, containment, equivalence.

Dispatches per fragment:

* CoreXPath↓(∩) inputs (the EXPSPACE row of Table I) go to the complete
  Figure 2 procedure (:mod:`repro.analysis.expspace`), via the Prop. 4/5
  reductions when the problem arrives as containment or without a schema.
  Verdicts from this engine are always conclusive.
* Everything else goes to the bounded model-search engine
  (:mod:`repro.analysis.engines`), the documented substitute for the paper's
  2-EXPTIME/non-elementary procedures: witnesses are conclusive, "no witness
  up to n nodes" is exact but bounded.
"""

from __future__ import annotations

from ..edtd import EDTD
from ..xpath.ast import NodeExpr, PathExpr
from ..xpath.fragments import DOWNWARD_CAP
from .engines import DEFAULT_MAX_NODES, check_containment, node_satisfiable
from .expspace import TooManyModalAtoms, downward_cap_satisfiable
from .problems import ContainmentResult, SatResult, Verdict
from .reductions import containment_to_node_unsat, sat_to_edtd_sat

__all__ = ["satisfiable", "contains", "equivalent"]


def _try_expspace(phi: NodeExpr, edtd: EDTD | None) -> SatResult | None:
    """Run the complete Figure 2 engine if the input fits its fragment."""
    if not DOWNWARD_CAP.admits(phi):
        return None
    if edtd is None:
        reduction = sat_to_edtd_sat(phi)
        if not DOWNWARD_CAP.admits(reduction.formula):
            return None
        try:
            inner = downward_cap_satisfiable(reduction.formula, reduction.edtd)
        except TooManyModalAtoms:
            return None
        if inner.verdict is Verdict.SATISFIABLE:
            tree, node = reduction.decode(inner.witness, inner.witness_node)
            return SatResult(Verdict.SATISFIABLE, tree, node,
                             explored_up_to=tree.size,
                             trees_checked=inner.trees_checked)
        return inner
    try:
        return downward_cap_satisfiable(phi, edtd)
    except TooManyModalAtoms:
        return None


def satisfiable(
    phi: NodeExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> SatResult:
    """Node satisfiability (§2.3), optionally w.r.t. an EDTD.

    ``method``: ``"auto"`` picks the complete Figure 2 engine when the input
    is CoreXPath↓(∩) (conclusive verdicts), else falls back to bounded
    search; ``"expspace"`` forces the former (raises if inapplicable);
    ``"bounded"`` forces the latter.
    """
    if method not in ("auto", "expspace", "bounded"):
        raise ValueError(f"unknown method {method!r}")
    if method in ("auto", "expspace"):
        result = _try_expspace(phi, edtd)
        if result is not None:
            return result
        if method == "expspace":
            raise ValueError(
                "the Figure 2 engine needs a CoreXPath↓(∩) input "
                f"(violations: {DOWNWARD_CAP.violations(phi)})"
            )
    return node_satisfiable(phi, max_nodes=max_nodes, edtd=edtd)


def contains(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ContainmentResult:
    """Path containment ``α ⊑ β`` (§2.3), optionally w.r.t. an EDTD.

    With ``method="auto"``, downward-∩ inputs are decided conclusively via
    the Prop. 4 reduction into the Figure 2 engine; other inputs are checked
    by exhaustive counterexample search up to ``max_nodes``.
    """
    if method not in ("auto", "expspace", "bounded"):
        raise ValueError(f"unknown method {method!r}")
    if method in ("auto", "expspace"):
        reduction = containment_to_node_unsat(alpha, beta, edtd)
        result = _try_expspace(reduction.formula, reduction.edtd)
        if result is not None:
            if result.verdict is Verdict.SATISFIABLE:
                tree, pair = reduction.decode(result.witness, result.witness_node)
                return ContainmentResult(Verdict.SATISFIABLE, tree, pair,
                                         explored_up_to=tree.size,
                                         trees_checked=result.trees_checked)
            return ContainmentResult(Verdict.UNSATISFIABLE,
                                     trees_checked=result.trees_checked)
        if method == "expspace":
            raise ValueError(
                "the Figure 2 engine needs CoreXPath↓(∩) inputs"
            )
    return check_containment(alpha, beta, max_nodes=max_nodes, edtd=edtd)


def equivalent(
    alpha: PathExpr,
    beta: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ContainmentResult:
    """Two-sided containment.  Returns the first failing direction's result
    (or the weaker of the two positive verdicts)."""
    forward = contains(alpha, beta, edtd=edtd, method=method, max_nodes=max_nodes)
    if forward.verdict is Verdict.SATISFIABLE:
        return forward
    backward = contains(beta, alpha, edtd=edtd, method=method, max_nodes=max_nodes)
    if backward.verdict is Verdict.SATISFIABLE:
        return backward
    weaker = Verdict.UNSATISFIABLE
    if Verdict.NO_WITNESS_WITHIN_BOUND in (forward.verdict, backward.verdict):
        weaker = Verdict.NO_WITNESS_WITHIN_BOUND
    return ContainmentResult(
        weaker,
        explored_up_to=min(filter(None, (forward.explored_up_to,
                                         backward.explored_up_to)), default=None),
        trees_checked=forward.trees_checked + backward.trees_checked,
    )
