"""Static analysis: problems, reductions, and decision engines (§2.3, §5)."""

from .problems import (
    DEFAULT_MAX_NODES,
    Verdict,
    SatResult,
    ContainmentResult,
    Problem,
    ProblemKind,
)
from .registry import (
    Engine,
    EngineDeclined,
    EngineRegistry,
    default_registry,
    plan_and_run,
)
from .reductions import (
    NodeSatReduction,
    EDTDSatReduction,
    containment_to_node_unsat,
    sat_to_edtd_sat,
    edtd_sat_to_sat,
)
from .engines import (
    node_satisfiable,
    path_satisfiable,
    check_containment,
    relevant_alphabet,
    random_witness_search,
)
from .simplepaths import (
    SimplePath,
    instantiate,
    intersect_simple,
    simple_to_path,
    suffixes,
)
from .expspace import (
    downward_cap_satisfiable,
    TypeSystem,
    CompleteType,
    TooManyModalAtoms,
)
from .session import (
    SchemaSession,
    schema_id_of,
    session_for,
    reset_sessions,
)
from .containment import satisfiable, contains, equivalent
from .shrink import shrink_witness, shrink_sat_witness, shrink_counterexample
from .optimize import (
    ContainmentGraph,
    containment_graph,
    equivalence_classes,
    minimal_cover,
    simplify_union,
)

__all__ = [
    "DEFAULT_MAX_NODES",
    "Verdict", "SatResult", "ContainmentResult",
    "Problem", "ProblemKind",
    "Engine", "EngineDeclined", "EngineRegistry", "default_registry",
    "plan_and_run",
    "NodeSatReduction", "EDTDSatReduction",
    "containment_to_node_unsat", "sat_to_edtd_sat", "edtd_sat_to_sat",
    "node_satisfiable", "path_satisfiable", "check_containment",
    "relevant_alphabet", "random_witness_search",
    "SimplePath", "instantiate", "intersect_simple", "simple_to_path",
    "suffixes",
    "downward_cap_satisfiable", "TypeSystem", "CompleteType",
    "TooManyModalAtoms",
    "SchemaSession", "schema_id_of", "session_for", "reset_sessions",
    "satisfiable", "contains", "equivalent",
    "ContainmentGraph", "containment_graph", "equivalence_classes",
    "minimal_cover", "simplify_union",
    "shrink_witness", "shrink_sat_witness", "shrink_counterexample",
]
