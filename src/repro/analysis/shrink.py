"""Witness minimization: present the smallest counterexample we can.

The bounded engines already return size-minimal witnesses (they enumerate by
size), but witnesses produced by the Figure 2 engine's type certificates or
by randomized search can be large.  :func:`shrink_witness` greedily deletes
subtrees and splices out internal nodes while a caller-supplied predicate
keeps holding — the classic delta-debugging loop, specialized to trees.
"""

from __future__ import annotations

from typing import Callable

from .. import obs
from ..trees import XMLTree

__all__ = ["shrink_witness", "shrink_sat_witness", "shrink_counterexample"]


def _delete_subtree(tree: XMLTree, victim: int) -> XMLTree | None:
    """The tree with the subtree rooted at ``victim`` removed; None if that
    would delete the root."""
    if victim == tree.root:
        return None
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(node: int, parent_new: int | None) -> None:
        labels.append(tree.label(node))
        parents.append(parent_new)
        me = len(labels) - 1
        for child in tree.children(node):
            if child != victim:
                emit(child, me)

    emit(tree.root, None)
    return XMLTree(labels, parents)


def _splice_node(tree: XMLTree, victim: int) -> XMLTree | None:
    """The tree with ``victim`` removed and its children attached, in order,
    to victim's parent at victim's former position; None for the root."""
    if tree.parent(victim) is None:
        return None
    labels: list[str] = []
    parents: list[int | None] = []

    def emit(node: int, parent_new: int | None) -> None:
        if node == victim:
            for child in tree.children(node):
                emit(child, parent_new)
            return
        labels.append(tree.label(node))
        parents.append(parent_new)
        me = len(labels) - 1
        for child in tree.children(node):
            emit(child, me)

    emit(tree.root, None)
    return XMLTree(labels, parents)


def shrink_witness(tree: XMLTree,
                   predicate: Callable[[XMLTree], bool]) -> XMLTree:
    """Greedily minimize ``tree`` while ``predicate(tree)`` stays true.

    Tries, in rounds until a fixpoint: deleting each subtree (largest
    first), then splicing out each internal node.  The result still
    satisfies the predicate; the input must.
    """
    if not predicate(tree):
        raise ValueError("the initial witness does not satisfy the predicate")
    current = tree
    changed = True
    with obs.span("shrink", initial_size=tree.size) as shrink_span:
        while changed:
            changed = False
            # Delete subtrees, biggest savings first.
            nodes = sorted(
                (n for n in current.nodes if n != current.root),
                key=lambda n: -len(current.descendants_or_self(n)),
            )
            for victim in nodes:
                if victim >= current.size:
                    continue
                candidate = _delete_subtree(current, victim)
                if candidate is not None and predicate(candidate):
                    current = candidate
                    changed = True
                    obs.count("shrink.steps")
                    break
            if changed:
                continue
            for victim in list(current.nodes):
                candidate = _splice_node(current, victim)
                if candidate is not None and predicate(candidate):
                    current = candidate
                    changed = True
                    obs.count("shrink.steps")
                    break
            if changed:
                continue
            # The root is unreachable by the operations above; when it has a
            # single child, try promoting that child.
            if len(current.children(current.root)) == 1:
                candidate = current.drop_root()
                if predicate(candidate):
                    current = candidate
                    changed = True
                    obs.count("shrink.steps")
        shrink_span.annotate(final_size=current.size)
    return current


def shrink_sat_witness(tree: XMLTree, phi) -> XMLTree:
    """Minimize a model of a node expression (it must stay satisfiable
    *somewhere* in the tree).

    The expression is compiled once (:func:`repro.semantics.compile_plan`,
    which canonicalizes through the rewrite pipeline) and the plan is
    re-run per shrink candidate — the delta-debugging loop evaluates the
    same expression hundreds of times, so per-candidate AST walks were the
    dominant cost here."""
    from ..semantics import TreeContext, compile_plan

    plan = compile_plan(phi)

    def still_holds(candidate: XMLTree) -> bool:
        return bool(plan.run_single(TreeContext(candidate)))

    return shrink_witness(tree, still_holds)


def shrink_counterexample(tree: XMLTree, alpha, beta) -> XMLTree:
    """Minimize a containment counterexample: some α-pair must remain that
    is not a β-pair.

    Both paths are compiled into one shared plan up front (common
    subexpressions between α and β get a single slot), then evaluated per
    candidate on a fresh :class:`~repro.semantics.TreeContext`."""
    from ..semantics import TreeContext, compile_plan

    plan = compile_plan(alpha, beta)

    def still_refutes(candidate: XMLTree) -> bool:
        left, right = plan.run(TreeContext(candidate))
        return any(
            targets - right.get(source, frozenset())
            for source, targets in left.items()
        )

    return shrink_witness(tree, still_refutes)
