"""The polynomial inter-reductions of Propositions 4, 5 and 6.

* :func:`containment_to_node_unsat` — Prop. 4: ``α ⊑ β`` iff a decorated
  formula ``⟨ᾱ[1]⟩ ∧ ¬⟨β̄[1]⟩`` is unsatisfiable, where each label ``p`` is
  split into marked/unmarked variants ``(p, 0)``, ``(p, 1)`` and exactly one
  node carries a mark.  Also the EDTD-relativized variant with the fresh
  super-root ``s``.
* :func:`sat_to_edtd_sat` — Prop. 5: plain satisfiability reduces to
  satisfiability w.r.t. a maximally permissive EDTD (plus super-root).
* :func:`edtd_sat_to_sat` — Prop. 6: satisfiability w.r.t. an EDTD reduces
  to plain satisfiability via *witness trees*, whose labels carry an abstract
  type and an NFA state and whose shape encodes accepting runs of the
  content-model automata.  The resulting formula is plain CoreXPath (no
  transitive-closure operator needed, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..edtd import EDTD
from ..regexes import NFA
from ..trees import XMLTree
from ..xpath.ast import (
    And,
    Axis,
    AxisClosure,
    AxisStep,
    Filter,
    Label,
    NodeExpr,
    Not,
    PathExpr,
    SomePath,
)
from ..xpath.builders import and_all, down, down_star, left, or_all, right, up
from ..xpath.measures import labels_used
from ..xpath.rewrite import relativize_axes, substitute_label

__all__ = [
    "NodeSatReduction",
    "EDTDSatReduction",
    "containment_to_node_unsat",
    "sat_to_edtd_sat",
    "edtd_sat_to_sat",
    "decorate",
    "decorated_frame",
    "permissive_frame",
    "MARKED",
    "UNMARKED",
]

MARKED = 1
UNMARKED = 0


def decorate(label: str, mark: int) -> str:
    """The decorated label ``(p, i)`` of Prop. 4, as a string."""
    return f"{label}#{mark}"


def fresh_label(taken: frozenset[str], stem: str = "z") -> str:
    """A label not occurring in ``taken``."""
    candidate = stem
    counter = 0
    while candidate in taken:
        candidate = f"{stem}{counter}"
        counter += 1
    return candidate


@dataclass(frozen=True)
class NodeSatReduction:
    """Output of Prop. 4: containment holds iff ``formula`` is unsatisfiable
    (w.r.t. ``edtd`` when present).  ``decode`` maps a witness tree of the
    formula back to a containment counterexample ``(tree, (d, e))``."""

    formula: NodeExpr
    edtd: EDTD | None
    decode: Callable[[XMLTree, int], tuple[XMLTree, tuple[int, int]]]


def decorated_frame(edtd: EDTD,
                    gamma: tuple[str, ...]) -> tuple[str, EDTD]:
    """The schema half of Prop. 4 for one joint label alphabet ``gamma``:
    the fresh super-root ``s`` and the decorated EDTD ``D̄``.  A pure
    function of ``(edtd, gamma)`` — :meth:`repro.edtd.compiled
    .CompiledSchema.decorated_frame` memoizes it per schema."""
    super_root = fresh_label(
        frozenset(edtd.concrete_labels())
        | frozenset(decorate(p, i) for p in gamma for i in (0, 1)),
        stem="s",
    )
    return super_root, _decorated_edtd(edtd, super_root)


def containment_to_node_unsat(alpha: PathExpr, beta: PathExpr,
                              edtd: EDTD | None = None, *,
                              schema=None) -> NodeSatReduction:
    """Prop. 4: ``α ⊑ β`` (w.r.t. ``edtd``) iff the returned formula is
    unsatisfiable (w.r.t. the returned EDTD).

    ``schema`` may be the problem's :class:`~repro.edtd.compiled
    .CompiledSchema`; when its EDTD *is* ``edtd`` the memoized decorated
    frame is reused instead of rebuilt (identical output either way —
    :func:`decorated_frame` is deterministic — so the schemaless path
    doubles as the differential oracle)."""
    gamma = set(labels_used(alpha) | labels_used(beta))
    gamma.add(fresh_label(frozenset(gamma)))
    gamma = sorted(gamma)

    def bar(path: PathExpr, super_root: str | None) -> PathExpr:
        decorated = path
        for label in gamma:
            both = or_all([Label(decorate(label, UNMARKED)),
                           Label(decorate(label, MARKED))])
            decorated = substitute_label(decorated, label, both)
        if super_root is not None:
            decorated = relativize_axes(decorated, Not(Label(super_root)))
        return decorated  # type: ignore[return-value]

    one = or_all([Label(decorate(label, MARKED)) for label in gamma])

    if edtd is None:
        formula = And(SomePath(Filter(bar(alpha, None), one)),
                      Not(SomePath(Filter(bar(beta, None), one))))
        out_edtd = None
        super_root = None
    else:
        if schema is not None and schema.edtd is edtd:
            super_root, out_edtd = schema.decorated_frame(edtd, tuple(gamma))
        else:
            super_root, out_edtd = decorated_frame(edtd, tuple(gamma))
        formula = and_all([
            Not(Label(super_root)),
            SomePath(Filter(bar(alpha, super_root), one)),
            Not(SomePath(Filter(bar(beta, super_root), one))),
        ])

    bar_alpha_marked = Filter(bar(alpha, super_root), one)

    def decode(tree: XMLTree, node: int) -> tuple[XMLTree, tuple[int, int]]:
        from ..semantics import evaluate_path

        # A model need not mark exactly one node (the canonical models of
        # the proof do, arbitrary ones may not): any marked ᾱ-target of the
        # witness node works, since no marked node is β̄-reachable from it.
        targets = evaluate_path(tree, bar_alpha_marked).get(node)
        if not targets:
            raise ValueError("witness node has no marked ᾱ-target")
        target = min(targets)
        if super_root is not None:
            # Drop the fresh super-root; node ids shift by one.
            plain = tree.drop_root()
            offset = 1
        else:
            plain = tree
            offset = 0
        undecorated = plain.relabel(lambda p: p.rsplit("#", 1)[0])
        return undecorated, (node - offset, target - offset)

    return NodeSatReduction(formula, out_edtd, decode)


def _decorated_edtd(edtd: EDTD, super_root: str) -> EDTD:
    """``D̄`` from the proof of Prop. 4."""
    from ..regexes.ast import Alt, Concat, Empty, Epsilon, KleeneStar, Regex, Symbol

    def bar_regex(regex: Regex) -> Regex:
        match regex:
            case Symbol(name=name):
                return Alt(Symbol(_abstract(name, UNMARKED)),
                           Symbol(_abstract(name, MARKED)))
            case Concat(left=a, right=b):
                return Concat(bar_regex(a), bar_regex(b))
            case Alt(left=a, right=b):
                return Alt(bar_regex(a), bar_regex(b))
            case KleeneStar(inner=a):
                return KleeneStar(bar_regex(a))
            case Empty() | Epsilon():
                return regex
        raise TypeError(f"unknown regex {regex!r}")

    def _abstract(name: str, mark: int) -> str:
        return f"{name}#{mark}"

    abstract = {super_root}
    content: dict[str, Regex] = {}
    projection: dict[str, str] = {super_root: super_root}
    content[super_root] = Alt(Symbol(_abstract(edtd.root_type, UNMARKED)),
                              Symbol(_abstract(edtd.root_type, MARKED)))
    for label in edtd.abstract_labels:
        for mark in (UNMARKED, MARKED):
            name = _abstract(label, mark)
            abstract.add(name)
            content[name] = bar_regex(edtd.content[label])
            projection[name] = decorate(edtd.projection[label], mark)
    return EDTD(frozenset(abstract), content, super_root, projection)


@dataclass(frozen=True)
class EDTDSatReduction:
    """Output of Prop. 5 / Prop. 6: ``formula`` (w.r.t. ``edtd`` if any) is
    satisfiable iff the original input was.  ``decode`` maps a witness tree
    and node of the output problem back to one of the input problem."""

    formula: NodeExpr
    edtd: EDTD | None
    decode: Callable[[XMLTree, int], tuple[XMLTree, int]]


def permissive_frame(gamma: tuple[str, ...]) -> tuple[EDTD, str]:
    """The schema half of Prop. 5: the maximally permissive DTD over
    ``gamma`` and its fresh super-root.  A pure function of ``gamma`` —
    :meth:`repro.edtd.compiled.CompiledSchema.permissive_frame` memoizes
    it per schema, so one instance (with warm content NFAs) serves every
    schemaless satisfiability over the session's alphabet."""
    super_root = fresh_label(frozenset(gamma), stem="s")
    anything = " | ".join(gamma)
    rules = {super_root: anything}
    for label in gamma:
        rules[label] = f"({anything})*"
    return EDTD.from_rules(rules, root_type=super_root), super_root


def sat_to_edtd_sat(phi: NodeExpr, *, schema=None) -> EDTDSatReduction:
    """Prop. 5: plain node satisfiability reduces to the EDTD-relativized
    version, via a maximally permissive DTD with a fresh super-root.

    ``schema`` may be the problem's :class:`~repro.edtd.compiled
    .CompiledSchema`; it memoizes the permissive frame per label alphabet
    (the schemaless path is deterministic-identical, serving as the
    differential oracle)."""
    gamma = tuple(sorted(labels_used(phi) | {fresh_label(labels_used(phi))}))
    if schema is not None:
        edtd, super_root = schema.permissive_frame(gamma)
    else:
        edtd, super_root = permissive_frame(gamma)
    relativized = relativize_axes(phi, Not(Label(super_root)))
    formula = And(relativized, Not(Label(super_root)))  # type: ignore[arg-type]

    def decode(tree: XMLTree, node: int) -> tuple[XMLTree, int]:
        return tree.drop_root(), node - 1

    return EDTDSatReduction(formula, edtd, decode)


def witness_label(abstract: str, owner: str, state_index: int) -> str:
    """The witness-tree label ``(t, q)`` of Prop. 6, where ``q`` is state
    ``state_index`` of the content-model NFA of ``owner``."""
    return f"{abstract}|{owner}:{state_index}"


def encode_witness_tree(tree: XMLTree, edtd: EDTD) -> XMLTree:
    """Encode a tree conforming to ``edtd`` as a Prop. 6 *witness tree*:
    each node is labeled ``(L'(n), q)`` with ``L'`` a witnessing typing and
    ``q`` the state of the parent's content-model NFA before reading it.
    The output satisfies the structural formula built by
    :func:`edtd_sat_to_sat` at its root."""
    typing = edtd.witness_typing(tree)
    if typing is None:
        raise ValueError("the tree does not conform to the EDTD")

    labels = [""] * tree.size
    # Root: the state component is arbitrary; use state 0 of its own NFA.
    labels[tree.root] = witness_label(typing[tree.root], typing[tree.root], 0)

    def assign(node: int) -> None:
        kids = tree.children(node)
        if not kids:
            return
        nfa = edtd.content_nfa(typing[node])
        word = [typing[kid] for kid in kids]
        run = _find_run(nfa, word)
        if run is None:
            raise AssertionError("witness typing admitted no accepting run")
        for kid, state in zip(kids, run[:-1]):
            labels[kid] = witness_label(typing[kid], typing[node], state)
            assign(kid)

    assign(tree.root)
    return XMLTree(labels, tree._parent)  # noqa: SLF001 - same-package access


def _find_run(nfa: NFA, word: list[str]) -> list[int] | None:
    """An accepting run ``s_0 … s_k`` of ``nfa`` on ``word`` (single states,
    found by backtracking)."""

    def search(position: int, state: int) -> list[int] | None:
        if position == len(word):
            return [state] if state in nfa.accepting else None
        for successor in sorted(nfa.successors(state, word[position])):
            rest = search(position + 1, successor)
            if rest is not None:
                return [state, *rest]
        return None

    for start in sorted(nfa.initial):
        run = search(0, start)
        if run is not None:
            return run
    return None


def edtd_sat_to_sat(phi: NodeExpr, edtd: EDTD) -> EDTDSatReduction:
    """Prop. 6: satisfiability w.r.t. an EDTD reduces to plain satisfiability
    via witness trees.

    Witness-tree labels are pairs ``(t, q)`` of an abstract type and an NFA
    state (of *some* content-model automaton), encoded as strings
    ``"t|owner:i"``.  The formula conjoins, per the proof: (1) the root's
    type is the root type, (2a) first children carry initial states of the
    parent's automaton, (2b) adjacent siblings respect its transition
    relation, (2c) last children can step to a final state, (3) leaves'
    automata accept ε — plus ``⟨↓*[φ']⟩`` at the root for the input formula
    with each label replaced by its matching witness labels.
    """
    automata: dict[str, NFA] = {
        label: edtd.content_nfa(label) for label in sorted(edtd.abstract_labels)
    }
    # The global state space: states of every automaton, disjointly named.
    states = [
        (owner, index)
        for owner in sorted(automata)
        for index in range(automata[owner].num_states)
    ]

    def label_of(abstract: str, state: tuple[str, int]) -> str:
        return f"{abstract}|{state[0]}:{state[1]}"

    witness_labels = [
        (abstract, state)
        for abstract in sorted(edtd.abstract_labels)
        for state in states
    ]

    def labels_with(predicate) -> list[NodeExpr]:
        return [Label(label_of(a, s)) for a, s in witness_labels if predicate(a, s)]

    conjuncts: list[NodeExpr] = []

    # (1) The root's abstract type is the root type (any state component).
    conjuncts.append(or_all(labels_with(lambda a, s: a == edtd.root_type)))

    first_child: PathExpr = Filter(down, Not(SomePath(left)))
    last_child_test: NodeExpr = Not(SomePath(right))

    def every_under(parent_test: NodeExpr, child_path: PathExpr,
                    child_test: NodeExpr) -> NodeExpr:
        """¬⟨↓*[parent]/child_path[child]⟩."""
        return Not(SomePath(
            Filter(Filter(down_star, parent_test) / child_path, child_test)
        ))

    for parent_abstract in sorted(edtd.abstract_labels):
        nfa = automata[parent_abstract]
        parent_test = or_all(labels_with(lambda a, s, p=parent_abstract: a == p))
        # (2a) First children carry an initial state of the parent's automaton.
        bad_first = or_all(labels_with(
            lambda a, s, p=parent_abstract: not (
                s[0] == p and s[1] in automata[p].initial
            )
        ))
        conjuncts.append(every_under(parent_test, first_child, bad_first))
        # (2b) Sibling transitions: a child (p, q) followed by (p'', q'')
        # requires (q, p, q'') ∈ δ of the parent's automaton.
        for child_abstract, child_state in witness_labels:
            if child_state[0] != parent_abstract:
                continue  # already excluded by (2a)/(2b) state-space checks
            allowed_next = nfa.successors(child_state[1], child_abstract)
            bad_next = or_all(labels_with(
                lambda a, s, p=parent_abstract, ok=allowed_next: not (
                    s[0] == p and s[1] in ok
                )
            ))
            child_label = Label(label_of(child_abstract, child_state))
            conjuncts.append(Not(SomePath(
                Filter(Filter(down_star, parent_test) / Filter(down, child_label)
                       / right, bad_next)
            )))
            # (2c) A last child (p, q) requires some accepting successor.
            can_finish = bool(allowed_next & nfa.accepting)
            if not can_finish:
                conjuncts.append(every_under(
                    parent_test, down, And(child_label, last_child_test)
                ))
    # (3) Leaves' automata accept the empty word.
    bad_leaf = or_all(labels_with(
        lambda a, s: not automata[a].accepts_epsilon()
    ))
    conjuncts.append(Not(SomePath(
        Filter(down_star, And(bad_leaf, Not(SomePath(down))))
    )))

    # The input formula, over witness labels.
    phi_prime = phi
    for concrete in sorted(labels_used(phi)):
        replacement = or_all(labels_with(
            lambda a, s, c=concrete: edtd.projection[a] == c
        ))
        phi_prime = substitute_label(phi_prime, concrete, replacement)

    formula = and_all([
        *conjuncts,
        Not(SomePath(up)),                       # evaluated at the root
        SomePath(Filter(down_star, phi_prime)),  # φ holds somewhere below
    ])

    def decode(tree: XMLTree, node: int) -> tuple[XMLTree, int]:
        def project(label: str) -> str:
            abstract = label.rsplit("|", 1)[0]
            return edtd.projection[abstract]

        return tree.relabel(project), node

    return EDTDSatReduction(formula, None, decode)
