"""The pluggable engine registry: who decides which problem, and why.

An :class:`Engine` wraps one decision procedure behind a uniform interface:

* ``name`` — how users force it (``--engine NAME``, ``method=NAME``);
* ``admits(problem)`` — a cheap syntactic test: could this engine run at
  all on the problem's fragment/kind?
* ``conclusive`` — whether its negative verdicts are proofs;
* ``cost_hint`` — a rough ordering key; the registry tries admitted
  engines cheapest-first, so a complete polynomial-ish procedure beats
  exhaustive search beats random sampling;
* ``solve(problem, session)`` — run it, or return ``None`` to *decline at
  runtime* (e.g. the EXPSPACE engine's type space blows past its memory
  guard — something ``admits`` cannot see syntactically).  ``session`` is
  the problem's :class:`~repro.analysis.session.SchemaSession`, carrying
  the compile-once :class:`~repro.edtd.compiled.CompiledSchema` every
  engine consumes instead of rebuilding its per-schema machinery.

:func:`plan_and_run` is the single dispatch point for the whole analysis
API: ``satisfiable``/``contains``/``equivalent`` build a
:class:`~repro.analysis.problems.Problem` and call it.  Every run notes an
``engine_decision`` record — the full candidate list with admission
verdicts and the engine finally chosen — so run records explain *why* a
problem went where it did.

Engines self-register at import time; :func:`default_registry` imports the
builtin engine modules lazily to avoid import cycles with
:mod:`repro.analysis.engines` and :mod:`repro.analysis.expspace`.
"""

from __future__ import annotations

import time
from dataclasses import replace

from .. import obs
from .problems import ContainmentResult, Problem, ProblemKind, SatResult, Verdict

__all__ = [
    "Engine",
    "EngineDeclined",
    "EngineRegistry",
    "default_registry",
    "plan_and_run",
]

Result = SatResult | ContainmentResult


class EngineDeclined(ValueError):
    """A forced engine could not take its problem: it either does not admit
    the input or declined at runtime (e.g. a memory guard tripped)."""


class Engine:
    """Base class for decision engines.  Subclasses set the class attributes
    and implement :meth:`admits` and :meth:`solve`."""

    #: Registry name; also the ``dispatch.<name>`` counter suffix.
    name: str = "abstract"
    #: Whether negative verdicts from this engine are proofs.
    conclusive: bool = False
    #: Rough relative cost; the registry tries cheaper engines first.
    cost_hint: int = 100
    #: Which rewrite-pipeline level (:data:`repro.xpath.passes.PIPELINES`)
    #: this engine wants its inputs canonicalized at; ``None`` inherits the
    #: session default (set by the CLI's ``--passes`` flag).  An engine that
    #: declares a level gets the *original* problem re-canonicalized at
    #: that level before ``solve``.
    pipeline: str | None = None

    def admits(self, problem: Problem) -> bool:
        """Cheap syntactic admissibility check."""
        raise NotImplementedError

    def solve(self, problem: Problem, session=None) -> Result | None:
        """Decide ``problem``, or return ``None`` to decline at runtime.

        ``session`` is the problem's
        :class:`~repro.analysis.session.SchemaSession` (the dispatcher
        always passes it); engines resolve it themselves via
        :func:`~repro.analysis.session.session_for` when called directly
        with ``session=None``.
        """
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "name": self.name,
            "conclusive": self.conclusive,
            "cost_hint": self.cost_hint,
            "pipeline": self.pipeline,
        }


class EngineRegistry:
    """An ordered collection of engines plus the dispatch policy."""

    def __init__(self) -> None:
        self._engines: dict[str, Engine] = {}

    def register(self, engine: Engine) -> Engine:
        """Add (or replace) an engine under its name."""
        self._engines[engine.name] = engine
        return engine

    def names(self) -> list[str]:
        return sorted(self._engines)

    def get(self, name: str) -> Engine:
        engine = self._engines.get(name)
        if engine is None:
            raise ValueError(
                f"unknown engine {name!r} (registered: {', '.join(self.names())})"
            )
        return engine

    def candidates(self, problem: Problem) -> list[Engine]:
        """All registered engines in dispatch order (cheapest first)."""
        return sorted(self._engines.values(),
                      key=lambda engine: (engine.cost_hint, engine.name))

    def plan_and_run(self, problem: Problem) -> Result:
        """Dispatch ``problem`` to an engine and return its result.

        With ``problem.engine`` set, that engine must admit and solve the
        problem (declining raises :class:`EngineDeclined`; an engine
        exception is re-raised) — except for equivalence, where the
        preference is forwarded to the per-direction subproblems.
        Otherwise admitted engines are tried cheapest-first until one
        produces a result; an engine that *raises* mid-``solve`` is treated
        like a runtime decline — the error is recorded on its
        ``engine_decision`` entry and dispatch falls through to the next
        admitted engine, re-raising only when no engine remains.  A
        :class:`EngineDeclined` escaping ``solve`` (a nested dispatch whose
        engine declined) is a *clean* decline, not an error: the entry is
        marked ``declined`` and ``dispatch.declined.<name>`` counted, never
        ``dispatch.error.<name>``.

        Every problem is canonicalized by the rewrite pipeline
        (:mod:`repro.xpath.passes`) before admission checks and dispatch,
        at the session level — so fragment tests, plan-cache keys and
        verdict-cache keys all see canonical forms.  An engine that
        declares its own ``pipeline`` level gets the original problem
        re-canonicalized at that level instead (memoized, so this costs a
        dictionary hit).
        """
        original = problem
        problem = problem.canonical()
        candidates = self.candidates(problem)
        decision: list[dict] = []
        chosen: Engine | None = None
        forced = problem.engine
        if forced is not None and problem.kind is not ProblemKind.EQUIVALENCE:
            engine = self.get(forced)
            decision = [dict(engine.describe(), admits=engine.admits(problem),
                             forced=True)]
            if not decision[0]["admits"]:
                obs.note("engine_decision", {"candidates": decision,
                                             "chosen": None})
                raise EngineDeclined(
                    f"engine {forced!r} does not admit this "
                    f"{problem.kind.value} problem"
                )
            chosen = engine
        else:
            for engine in candidates:
                admitted = engine.admits(problem)
                decision.append(dict(engine.describe(), admits=admitted))
                if admitted and chosen is None:
                    chosen = engine
        last_error: Exception | None = None
        dispatch_start = time.perf_counter()
        session = None  # the canonical problem's session, resolved lazily
        with obs.span("dispatch", problem=problem.kind.value):
            from .session import session_for

            while chosen is not None:
                solve_input = problem if chosen.pipeline is None \
                    else original.canonical(chosen.pipeline)
                if solve_input is problem:
                    if session is None:
                        session = session_for(problem)
                    attempt_session = session
                else:
                    # A custom-pipeline canonical form may mention a
                    # different label alphabet — its own schema.
                    attempt_session = session_for(solve_input)
                try:
                    result = chosen.solve(solve_input, attempt_session)
                except EngineDeclined as declined:
                    # A *clean* decline surfacing as an exception — e.g. a
                    # nested dispatch (equivalence sub-containments) whose
                    # forced engine declined.  This is not an engine bug:
                    # record it exactly like a ``solve() -> None`` decline
                    # so ``engine_decision`` keeps declines and errors
                    # distinguishable, and never count ``dispatch.error.*``.
                    for entry in decision:
                        if entry["name"] == chosen.name:
                            entry["declined"] = True
                    obs.count(f"dispatch.declined.{chosen.name}")
                    if forced is not None:
                        obs.note("engine_decision", {"candidates": decision,
                                                     "chosen": None})
                        raise
                    last_error = declined
                    result = None
                except Exception as error:
                    # An engine bug or an uncaught guard must not abort the
                    # whole dispatch: record the failure on the decision
                    # entry and fall through like a runtime decline.
                    for entry in decision:
                        if entry["name"] == chosen.name:
                            entry["error"] = f"{type(error).__name__}: {error}"
                    obs.count(f"dispatch.error.{chosen.name}")
                    if forced is not None:
                        obs.note("engine_decision", {"candidates": decision,
                                                     "chosen": None})
                        raise
                    last_error = error
                    result = None
                else:
                    if result is not None:
                        obs.note("engine_decision",
                                 {"candidates": decision, "chosen": chosen.name})
                        obs.observe("dispatch.solve_s",
                                    time.perf_counter() - dispatch_start)
                        return result
                    # Runtime decline: mark it and fall through to the next
                    # admitted candidate (or fail if the engine was forced).
                    for entry in decision:
                        if entry["name"] == chosen.name:
                            entry["declined"] = True
                    obs.count(f"dispatch.declined.{chosen.name}")
                    if forced is not None:
                        obs.note("engine_decision", {"candidates": decision,
                                                     "chosen": None})
                        raise EngineDeclined(
                            f"engine {forced!r} declined this "
                            f"{problem.kind.value} problem at runtime"
                        )
                chosen = next(
                    (engine for engine in candidates
                     if engine.admits(problem)
                     and not any(entry["name"] == engine.name
                                 and (entry.get("declined")
                                      or "error" in entry)
                                 for entry in decision)),
                    None,
                )
        obs.note("engine_decision", {"candidates": decision, "chosen": None})
        if last_error is not None:
            raise last_error
        raise ValueError(
            f"no registered engine admits this {problem.kind.value} problem"
        )


class BidirectionalEngine(Engine):
    """Decides equivalence as two containment subproblems.

    The per-direction results are preserved verbatim on
    ``ContainmentResult.per_direction``; the aggregate ``explored_up_to``
    is the tightest bound over the *inconclusive* directions only (a
    conclusively-decided direction imposes no bound), and
    ``trees_checked`` is the total work.
    """

    name = "bidirectional"
    conclusive = False  # conclusive iff both directions are.
    cost_hint = 50

    def admits(self, problem: Problem) -> bool:
        return problem.kind is ProblemKind.EQUIVALENCE

    def solve(self, problem: Problem,
              session=None) -> ContainmentResult:
        # The per-direction subproblems resolve their own sessions inside
        # the nested dispatch; the equivalence-level session is unused.
        assert problem.alpha is not None and problem.beta is not None
        forward_problem = Problem(
            ProblemKind.CONTAINMENT, alpha=problem.alpha, beta=problem.beta,
            edtd=problem.edtd, max_nodes=problem.max_nodes,
            engine=problem.engine,
        )
        with obs.span("direction", which="forward"):
            forward = plan_and_run(forward_problem)
        assert isinstance(forward, ContainmentResult)
        if forward.verdict is Verdict.SATISFIABLE:
            return _with_directions(forward, (forward, None))
        backward_problem = Problem(
            ProblemKind.CONTAINMENT, alpha=problem.beta, beta=problem.alpha,
            edtd=problem.edtd, max_nodes=problem.max_nodes,
            engine=problem.engine,
        )
        with obs.span("direction", which="backward"):
            backward = plan_and_run(backward_problem)
        assert isinstance(backward, ContainmentResult)
        if backward.verdict is Verdict.SATISFIABLE:
            return _with_directions(backward, (forward, backward))
        verdict = Verdict.UNSATISFIABLE
        if not (forward.conclusive and backward.conclusive):
            verdict = Verdict.NO_WITNESS_WITHIN_BOUND
        bounds = [direction.explored_up_to
                  for direction in (forward, backward)
                  if not direction.conclusive]
        return ContainmentResult(
            verdict,
            explored_up_to=min((b for b in bounds if b is not None),
                               default=None),
            trees_checked=forward.trees_checked + backward.trees_checked,
            per_direction=(forward, backward),
        )


def _with_directions(
    result: ContainmentResult,
    directions: tuple[ContainmentResult | None, ContainmentResult | None],
) -> ContainmentResult:
    return replace(result, per_direction=directions)


_DEFAULT: EngineRegistry | None = None


def default_registry() -> EngineRegistry:
    """The process-wide registry, with the builtin engines loaded."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = EngineRegistry()
        registry.register(BidirectionalEngine())
        _DEFAULT = registry
        # Builtin engine modules self-register on import; imported lazily
        # here to break the cycle analysis.engines -> ... -> registry.
        from . import automata_engine as _automata  # noqa: F401
        from . import engines as _engines  # noqa: F401
        from . import expspace as _expspace  # noqa: F401
        from . import patterns as _patterns  # noqa: F401
    return _DEFAULT


def plan_and_run(problem: Problem) -> Result:
    """Dispatch ``problem`` through the default registry."""
    return default_registry().plan_and_run(problem)
