"""Simple-path instantiation for CoreXPath↓(∩) (Lemma 20).

A *simple* path expression is a composition ``α₁/…/α_n`` where each ``α_i``
is ``↓``, ``↓*`` or ``.[φ]``.  Lemma 20 rewrites any CoreXPath↓(∩) path
expression into an equivalent union ``⋃ inst(α)`` of simple path expressions,
eliminating both ``∪`` and ``∩`` at single-exponential cost; the length of
each member stays linear (≤ 4·|α|).  This is the preprocessing step of the
Figure 2 EXPSPACE algorithm.

Simple paths are represented as tuples of atoms: ``Axis.DOWN`` for ``↓``,
``"star"`` for ``↓*``, and a node expression for ``.[φ]``.
"""

from __future__ import annotations

from ..xpath.ast import (
    Axis,
    AxisClosure,
    AxisStep,
    Filter,
    Intersect,
    NodeExpr,
    PathExpr,
    Self,
    Seq,
    Top,
    Union,
)
from ..xpath.builders import seq_all

__all__ = [
    "SimplePath",
    "DOWN",
    "DOWN_STAR",
    "instantiate",
    "intersect_simple",
    "simple_to_path",
    "simple_length",
    "suffixes",
]

#: Atom markers for ``↓`` and ``↓*``; the third atom kind is a NodeExpr.
DOWN = "down"
DOWN_STAR = "down*"

#: A simple path: a tuple of atoms (possibly empty = the identity ε).
SimplePath = tuple


def simple_length(simple: SimplePath) -> int:
    return len(simple)


def suffixes(simple: SimplePath):
    """All suffixes ``α_i/…/α_n`` (including the full path and ε)."""
    for start in range(len(simple) + 1):
        yield simple[start:]


def intersect_simple(first: SimplePath, second: SimplePath) -> frozenset[SimplePath]:
    """``int{α, β}``: simple paths whose union is ``α ∩ β`` (Lemma 20)."""
    memo: dict[tuple[SimplePath, SimplePath], frozenset[SimplePath]] = {}

    def go(a: SimplePath, b: SimplePath) -> frozenset[SimplePath]:
        key = (a, b)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = _intersect_raw(a, b, go)
        memo[key] = result
        return result

    return go(first, second)


def _intersect_raw(a: SimplePath, b: SimplePath, go) -> frozenset[SimplePath]:
    # int{α} = {α}: one side exhausted and the other empty.
    if not a and not b:
        return frozenset({()})
    if not a or not b:
        # int{ε, β} cases (symmetric).
        shorter, longer = (a, b) if not a else (b, a)
        head, tail = longer[0], longer[1:]
        if head == DOWN:
            return frozenset()
        if head == DOWN_STAR:
            return go(shorter, tail)
        # head is a filter .[φ]
        return frozenset({(head, *rest) for rest in go(shorter, tail)})
    head_a, tail_a = a[0], a[1:]
    head_b, tail_b = b[0], b[1:]
    # Filters commute out first (int{.[φ]/α, β} = .[φ]/int{α, β}).
    if isinstance(head_a, NodeExpr) or (head_a not in (DOWN, DOWN_STAR)):
        return frozenset({(head_a, *rest) for rest in go(tail_a, b)})
    if isinstance(head_b, NodeExpr) or (head_b not in (DOWN, DOWN_STAR)):
        return frozenset({(head_b, *rest) for rest in go(a, tail_b)})
    if head_a == DOWN and head_b == DOWN:
        return frozenset({(DOWN, *rest) for rest in go(tail_a, tail_b)})
    if head_a == DOWN and head_b == DOWN_STAR:
        return go(a, tail_b) | frozenset({(DOWN, *rest) for rest in go(tail_a, b)})
    if head_a == DOWN_STAR and head_b == DOWN:
        return go(tail_a, b) | frozenset({(DOWN, *rest) for rest in go(a, tail_b)})
    # Both start with ↓*.
    return (frozenset({(DOWN_STAR, *rest) for rest in go(tail_a, b)})
            | frozenset({(DOWN_STAR, *rest) for rest in go(a, tail_b)}))


def instantiate(path: PathExpr) -> frozenset[SimplePath]:
    """``inst(α)``: simple paths whose union is equivalent to ``α``.

    Only defined for CoreXPath↓(∩) path expressions (axes ``↓``/``↓*``,
    ``.``, ``/``, ``∪``, ``∩``, filters).
    """
    match path:
        case AxisStep(axis=Axis.DOWN):
            return frozenset({(DOWN,)})
        case AxisClosure(axis=Axis.DOWN):
            return frozenset({(DOWN_STAR,)})
        case Self():
            return frozenset({((Top()),)})
        case Filter(path=AxisStep(axis=Axis.DOWN), predicate=p):
            return frozenset({(DOWN, p)})
        case Filter(path=AxisClosure(axis=Axis.DOWN), predicate=p):
            return frozenset({(DOWN_STAR, p)})
        case Filter(path=Self(), predicate=p):
            return frozenset({(p,)})
        case Filter(path=inner, predicate=p):
            return frozenset({
                (*simple, p) for simple in instantiate(inner)
            })
        case Seq(left=a, right=b):
            return frozenset({
                (*sa, *sb) for sa in instantiate(a) for sb in instantiate(b)
            })
        case Union(left=a, right=b):
            return instantiate(a) | instantiate(b)
        case Intersect(left=a, right=b):
            result: set[SimplePath] = set()
            for sa in instantiate(a):
                for sb in instantiate(b):
                    result |= intersect_simple(sa, sb)
            return frozenset(result)
    raise ValueError(
        f"{type(path).__name__} is outside CoreXPath↓(∩); "
        "inst(α) is only defined for the downward fragment"
    )


def simple_to_path(simple: SimplePath) -> PathExpr:
    """Back to an ordinary path expression (ε becomes ``.[⊤]``)."""
    parts: list[PathExpr] = []
    for atom in simple:
        if atom == DOWN:
            parts.append(AxisStep(Axis.DOWN))
        elif atom == DOWN_STAR:
            parts.append(AxisClosure(Axis.DOWN))
        else:
            parts.append(Filter(Self(), atom))
    if not parts:
        return Filter(Self(), Top())
    return seq_all(parts)
