"""The static-analysis problems of §2.3: their IR and answer types.

Three problems: *path containment*, *path satisfiability* and *node
satisfiability*, each optionally relativized to an EDTD.  A :class:`Problem`
is the first-class description of one such question — what is asked, of
which expressions, under which schema and search budget — and is what the
engine registry (:mod:`repro.analysis.registry`) dispatches on.

Because the general procedures in this reproduction decide problems by
bounded model search (see DESIGN.md §2), answers are three-valued: a
positive answer comes with a witness, a negative one records up to which
model size the search was exhaustive — and is marked *conclusive* when a
complete procedure (or a small-model theorem) covers that bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..edtd import EDTD
from ..trees import XMLTree
from ..xpath.ast import Expr, NodeExpr, PathExpr

__all__ = [
    "DEFAULT_MAX_NODES",
    "Problem",
    "ProblemKind",
    "Verdict",
    "SatResult",
    "ContainmentResult",
]

#: Default exhaustive-search bound for the bounded engines.
DEFAULT_MAX_NODES = 6


class ProblemKind(enum.Enum):
    """What is being asked of the analysis layer."""

    #: Is ``[[φ]]`` nonempty on some (conforming) tree?  Uses ``phi``.
    SATISFIABILITY = "satisfiability"
    #: Does ``[[α]] ⊆ [[β]]`` hold on every (conforming) tree?
    CONTAINMENT = "containment"
    #: Two-sided containment ``α ≡ β``.
    EQUIVALENCE = "equivalence"


@dataclass(frozen=True)
class Problem:
    """One decision problem, ready for engine dispatch.

    ``engine`` optionally *forces* a registered engine by name (the CLI's
    ``--engine`` flag and the legacy ``method=`` keyword map here);
    ``None`` lets the registry pick the cheapest conclusive engine that
    admits the input.
    """

    kind: ProblemKind
    phi: NodeExpr | None = None
    alpha: PathExpr | None = None
    beta: PathExpr | None = None
    edtd: EDTD | None = None
    max_nodes: int = DEFAULT_MAX_NODES
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.kind is ProblemKind.SATISFIABILITY:
            if self.phi is None:
                raise ValueError("satisfiability needs phi")
        elif self.alpha is None or self.beta is None:
            raise ValueError(f"{self.kind.value} needs alpha and beta")

    def expressions(self) -> tuple[Expr, ...]:
        """The input expressions, in a fixed order."""
        if self.kind is ProblemKind.SATISFIABILITY:
            assert self.phi is not None
            return (self.phi,)
        assert self.alpha is not None and self.beta is not None
        return (self.alpha, self.beta)

    def forced(self, engine: str | None) -> "Problem":
        """The same problem with the engine preference replaced."""
        return replace(self, engine=engine)

    def canonical(self, level: str | None = None) -> "Problem":
        """The same problem with every input expression canonicalized by
        the rewrite pipeline (:mod:`repro.xpath.passes`) at ``level``
        (default: the session level).

        With a schema, the EDTD's concrete labels are passed as the
        alphabet, enabling dead-branch elimination — sound because the
        problem only quantifies over conforming documents.  The
        canonicalization is semantics-preserving, so verdicts (and cache
        entries — see :func:`repro.parallel.cache.problem_fingerprint`) for
        the canonical problem are verdicts for the original.  Idempotent:
        canonicalizing twice returns structurally identical expressions.
        """
        from ..xpath import passes

        alphabet = (frozenset(self.edtd.concrete_labels())
                    if self.edtd is not None else None)

        def canon(expr):
            if expr is None:
                return None
            return passes.canonical(expr, level=level, alphabet=alphabet)

        return replace(self, phi=canon(self.phi), alpha=canon(self.alpha),
                       beta=canon(self.beta))


class Verdict(enum.Enum):
    """Outcome of a satisfiability or containment check."""

    #: Satisfiable / not contained — a concrete witness tree exists.
    SATISFIABLE = "satisfiable"
    #: Proven unsatisfiable / contained (the search bound was conclusive).
    UNSATISFIABLE = "unsatisfiable"
    #: No witness up to the search bound; not a proof.
    NO_WITNESS_WITHIN_BOUND = "no-witness-within-bound"


@dataclass(frozen=True)
class SatResult:
    """Result of a (node or path) satisfiability check."""

    verdict: Verdict
    witness: XMLTree | None = None
    witness_node: int | None = None
    explored_up_to: int | None = None
    trees_checked: int = 0
    #: Optional observability payload: a ``repro.obs.RunRecord`` dict
    #: describing the run that produced this result (None unless the caller
    #: asked for stats).
    stats: dict | None = None

    def __bool__(self) -> bool:
        """Truthy iff satisfiable."""
        return self.verdict is Verdict.SATISFIABLE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.NO_WITNESS_WITHIN_BOUND

    def with_stats(self, stats: dict | None) -> "SatResult":
        """The same result carrying an observability record."""
        return replace(self, stats=stats)


@dataclass(frozen=True)
class ContainmentResult:
    """Result of a containment check ``α ⊑ β``.

    A *counterexample* is a tree plus a pair in ``[[α]] \\ [[β]]``.  For
    equivalence checks, ``per_direction`` carries the exact per-direction
    results (forward ``α ⊑ β`` first; a direction that was short-circuited
    is ``None``) — the top-level ``explored_up_to``/``trees_checked`` are
    aggregates and cannot express, e.g., one conclusive and one bounded
    direction.
    """

    verdict: Verdict
    counterexample: XMLTree | None = None
    counterexample_pair: tuple[int, int] | None = None
    explored_up_to: int | None = None
    trees_checked: int = 0
    #: Optional observability payload (see :class:`SatResult.stats`).
    stats: dict | None = None
    #: For equivalence checks: (forward, backward) direction results.
    per_direction: tuple["ContainmentResult | None",
                         "ContainmentResult | None"] | None = field(
        default=None, compare=False)

    def __bool__(self) -> bool:
        """Truthy iff containment *holds* (as far as the check could tell);
        use :attr:`conclusive` to distinguish proof from bounded evidence."""
        return self.verdict is not Verdict.SATISFIABLE

    @property
    def contained(self) -> bool:
        return self.verdict is not Verdict.SATISFIABLE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.NO_WITNESS_WITHIN_BOUND

    def with_stats(self, stats: dict | None) -> "ContainmentResult":
        """The same result carrying an observability record."""
        return replace(self, stats=stats)
