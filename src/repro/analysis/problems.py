"""The static-analysis problems of §2.3 and their answer types.

Three problems: *path containment*, *path satisfiability* and *node
satisfiability*, each optionally relativized to an EDTD.  Because the general
procedures in this reproduction decide them by bounded model search (see
DESIGN.md §2), answers are three-valued: a positive answer comes with a
witness, a negative one records up to which model size the search was
exhaustive — and is marked *conclusive* when a small-model theorem covers
that bound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..trees import XMLTree

__all__ = ["Verdict", "SatResult", "ContainmentResult"]


class Verdict(enum.Enum):
    """Outcome of a satisfiability or containment check."""

    #: Satisfiable / not contained — a concrete witness tree exists.
    SATISFIABLE = "satisfiable"
    #: Proven unsatisfiable / contained (the search bound was conclusive).
    UNSATISFIABLE = "unsatisfiable"
    #: No witness up to the search bound; not a proof.
    NO_WITNESS_WITHIN_BOUND = "no-witness-within-bound"


@dataclass(frozen=True)
class SatResult:
    """Result of a (node or path) satisfiability check."""

    verdict: Verdict
    witness: XMLTree | None = None
    witness_node: int | None = None
    explored_up_to: int | None = None
    trees_checked: int = 0
    #: Optional observability payload: a ``repro.obs.RunRecord`` dict
    #: describing the run that produced this result (None unless the caller
    #: asked for stats).
    stats: dict | None = None

    def __bool__(self) -> bool:
        """Truthy iff satisfiable."""
        return self.verdict is Verdict.SATISFIABLE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.NO_WITNESS_WITHIN_BOUND

    def with_stats(self, stats: dict | None) -> "SatResult":
        """The same result carrying an observability record."""
        return replace(self, stats=stats)


@dataclass(frozen=True)
class ContainmentResult:
    """Result of a containment check ``α ⊑ β``.

    A *counterexample* is a tree plus a pair in ``[[α]] \\ [[β]]``.
    """

    verdict: Verdict
    counterexample: XMLTree | None = None
    counterexample_pair: tuple[int, int] | None = None
    explored_up_to: int | None = None
    trees_checked: int = 0
    #: Optional observability payload (see :class:`SatResult.stats`).
    stats: dict | None = None

    def __bool__(self) -> bool:
        """Truthy iff containment *holds* (as far as the check could tell);
        use :attr:`conclusive` to distinguish proof from bounded evidence."""
        return self.verdict is not Verdict.SATISFIABLE

    @property
    def contained(self) -> bool:
        return self.verdict is not Verdict.SATISFIABLE

    @property
    def conclusive(self) -> bool:
        return self.verdict is not Verdict.NO_WITNESS_WITHIN_BOUND

    def with_stats(self, stats: dict | None) -> "ContainmentResult":
        """The same result carrying an observability record."""
        return replace(self, stats=stats)
