"""The ``automata`` engine: Theorem 10's decision procedure, registered.

Satisfiability of a CoreXPath(*, ≈) node expression is decided by building
the Table III 2ATA (:func:`repro.automata.build_twoata`) and checking
emptiness over the first-child/next-sibling encoding
(:func:`repro.automata.emptiness.decide_emptiness`); containment goes
through the Prop. 4 reduction first, exactly as the paper composes
Theorem 10 with Proposition 4.  Verdicts are conclusive in both
directions — a containment that holds is *proven*, a non-containment
yields a witness tree — which is what the bounded searches in
:mod:`repro.analysis.engines` cannot offer without a user-supplied bound.

Slots into the cost ladder between the Figure 2 downward engine
(``expspace``, cost 10, schema-aware but downward-only) and the bounded
fallback (cost 100): it admits the full CoreXPath(*, ≈) fragment but no
EDTD.  Like ``expspace`` it declines at runtime — ``solve`` returns
``None`` and the registry falls through to ``bounded`` — when the summary
saturation outgrows its guards (:class:`~repro.automata.emptiness
.EmptinessLimit`).

Every satisfiable verdict is self-validating: the decoded witness tree is
re-checked against the input formula with a compiled plan before the
result is returned, so a checker bug can surface as a loud error but never
as a quietly wrong SAT verdict.
"""

from __future__ import annotations

from .. import obs
from ..automata import build_twoata
from ..automata.emptiness import EmptinessLimit, EmptinessResult, decide_emptiness
from ..semantics import TreeContext, compile_plan
from ..xpath.ast import NodeExpr
from ..xpath.fragments import CORE_STAR_EQ
from .problems import ContainmentResult, Problem, ProblemKind, SatResult, Verdict
from .registry import Engine, default_registry

__all__ = ["AutomataEngine"]


class AutomataEngine(Engine):
    """2ATA emptiness (Theorem 10) for CoreXPath(*, ≈), schemaless."""

    name = "automata"
    conclusive = True
    cost_hint = 40

    #: Summary-search guards handed to :func:`decide_emptiness`; sized so a
    #: declining run costs a couple of seconds at most.  Tests and
    #: benchmarks that want the full worst-case procedure can raise them
    #: per instance.  ``max_states`` gates before saturation even starts:
    #: past it, per-evaluation cost alone makes the guards unreachable in
    #: reasonable time.
    max_states = 600
    max_evals = 120_000
    max_entries = 5_000
    max_contexts = 1_000

    def admits(self, problem: Problem) -> bool:
        if problem.edtd is not None:
            return False
        if problem.kind is ProblemKind.SATISFIABILITY:
            return CORE_STAR_EQ.admits(problem.phi)
        if problem.kind is ProblemKind.CONTAINMENT:
            return (CORE_STAR_EQ.admits(problem.alpha)
                    and CORE_STAR_EQ.admits(problem.beta))
        return False

    def solve(self, problem: Problem,
              session=None) -> SatResult | ContainmentResult | None:
        obs.note("engine", self.name)
        # The worker-local schema session: emptiness checks over one
        # schema share the compiled alphabet partition and the bitset
        # kernel's relation memos across the whole batch instead of
        # rebuilding them per problem.
        from .session import session_for

        if session is None:
            session = session_for(problem)
        if problem.kind is ProblemKind.SATISFIABILITY:
            outcome = self._check(problem.phi, session,
                                  session.compiled.partition)
            if outcome is None:
                return None
            obs.count(f"dispatch.{self.name}")
            empty, witness, node = outcome
            if empty:
                return SatResult(Verdict.UNSATISFIABLE)
            return SatResult(Verdict.SATISFIABLE, witness, node,
                             explored_up_to=witness.size, trees_checked=1)

        from .reductions import containment_to_node_unsat

        reduction = containment_to_node_unsat(problem.alpha, problem.beta)
        outcome = self._check(reduction.formula, session,
                              session.compiled.decorated_partition())
        if outcome is None:
            return None
        obs.count(f"dispatch.{self.name}")
        empty, witness, node = outcome
        if empty:
            return ContainmentResult(Verdict.UNSATISFIABLE)
        tree, pair = reduction.decode(witness, node)
        return ContainmentResult(Verdict.SATISFIABLE, tree, pair,
                                 explored_up_to=tree.size, trees_checked=1)

    def _check(self, phi: NodeExpr, session=None,
               partition=None) -> tuple[bool, object, object] | None:
        """Emptiness of ``A_φ``: ``(empty, witness, witness_node)``, or
        ``None`` when the saturation hits its guards.  ``partition`` is the
        compiled schema's alphabet-partition seed; :func:`build_twoata`
        adopts it only when it matches the formula's own mentioned labels
        exactly, so verdicts and counters are identical either way."""
        automaton = build_twoata(phi, partition=partition)
        if automaton.num_states > self.max_states:
            obs.count(f"dispatch.{self.name}_too_large")
            return None
        try:
            result: EmptinessResult = decide_emptiness(
                automaton,
                max_evals=self.max_evals,
                max_entries=self.max_entries,
                max_contexts=self.max_contexts,
                shared=session.kernel_cache if session is not None else None,
            )
        except EmptinessLimit:
            obs.count(f"dispatch.{self.name}_too_large")
            return None
        if result.empty:
            return True, None, None
        nodes = compile_plan(phi).run_single(TreeContext(result.witness))
        if not nodes:
            raise RuntimeError(
                "emptiness produced a witness tree that does not satisfy "
                "the formula — 2ATA emptiness bug"
            )
        return False, result.witness, min(nodes)


default_registry().register(AutomataEngine())
