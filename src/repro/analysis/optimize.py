"""Workload-level query optimization built on containment.

The paper's Related Work motivates containment by "redundancy elimination in
answers to multiple XPath queries" [Tajima & Fukui 2004] and index/update
applications.  This module packages the corresponding operations:

* :func:`containment_graph` — the ⊑ preorder over a workload;
* :func:`equivalence_classes` — its strongly connected components
  (semantically equivalent queries);
* :func:`minimal_cover` — drop queries subsumed by others (their answers
  are unions of the remaining answers);
* :func:`simplify_union` — remove redundant members of a union query.

Verdicts come from :func:`repro.analysis.contains`; with ``method="auto"``
downward-∩ workloads get conclusive answers, anything else is checked by
bounded counterexample search (sound for "not contained", bounded evidence
for "contained" — the three-valued bookkeeping is preserved on the result).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..edtd import EDTD
from ..xpath import passes
from ..xpath.ast import PathExpr
from ..xpath.passes import rebuild_union, union_members
from .containment import contains
from .engines import DEFAULT_MAX_NODES
from .problems import Verdict

__all__ = [
    "ContainmentGraph",
    "containment_graph",
    "equivalence_classes",
    "minimal_cover",
    "simplify_union",
]


@dataclass(frozen=True)
class ContainmentGraph:
    """The ⊑ relation over a list of queries.

    ``edges[i]`` is the set of j with query_i ⊑ query_j; ``conclusive`` is
    False if any single verdict was only bounded evidence.
    """

    queries: tuple[PathExpr, ...]
    edges: dict[int, frozenset[int]]
    conclusive: bool

    def contained_in(self, i: int) -> frozenset[int]:
        return self.edges[i]

    def equivalent_pairs(self) -> list[tuple[int, int]]:
        return [
            (i, j)
            for i in range(len(self.queries))
            for j in self.edges[i]
            if i < j and i in self.edges[j]
        ]


def containment_graph(
    queries: list[PathExpr],
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ContainmentGraph:
    """Compute all pairwise containments of a workload."""
    edges: dict[int, set[int]] = {i: set() for i in range(len(queries))}
    conclusive = True
    for i, alpha in enumerate(queries):
        for j, beta in enumerate(queries):
            if i == j:
                edges[i].add(j)
                continue
            result = contains(alpha, beta, edtd=edtd, method=method,
                              max_nodes=max_nodes)
            if result.contained:
                edges[i].add(j)
                conclusive = conclusive and result.conclusive
    return ContainmentGraph(
        tuple(queries),
        {i: frozenset(targets) for i, targets in edges.items()},
        conclusive,
    )


def equivalence_classes(graph: ContainmentGraph) -> list[list[int]]:
    """Partition query indices into semantic-equivalence classes
    (mutual containment), each sorted, classes ordered by first member."""
    assigned: dict[int, int] = {}
    classes: list[list[int]] = []
    for i in range(len(graph.queries)):
        if i in assigned:
            continue
        members = [
            j for j in sorted(graph.edges[i])
            if i in graph.edges[j] and j not in assigned
        ]
        for member in members:
            assigned[member] = len(classes)
        classes.append(members)
    return classes


def minimal_cover(graph: ContainmentGraph) -> list[int]:
    """Indices of a minimal sub-workload whose members are not strictly
    contained in any other member (the "maximal" queries; every dropped
    query's answer is a subset of some kept query's answer).

    Among equivalent queries, the smallest index is kept.
    """
    classes = equivalence_classes(graph)
    representatives = [members[0] for members in classes]
    kept = []
    for rep in representatives:
        strictly_above = [
            other for other in representatives
            if other != rep and other in graph.edges[rep]
            and rep not in graph.edges[other]
        ]
        if not strictly_above:
            kept.append(rep)
    return sorted(kept)


def simplify_union(
    query: PathExpr,
    edtd: EDTD | None = None,
    method: str = "auto",
    max_nodes: int = DEFAULT_MAX_NODES,
) -> PathExpr:
    """Drop union members contained in the union of the others.

    Returns a (possibly) smaller equivalent query in rewrite-pipeline
    canonical form.  The query is canonicalized first
    (:func:`repro.xpath.passes.canonical`), so *syntactic* redundancy —
    duplicated members, members subsumed by a sibling's closure — is
    eliminated for free before any engine runs; the containment loop then
    only pays for the genuinely semantic drops.  Union flattening and
    rebuilding use the shared :func:`~repro.xpath.passes.union_members` /
    :func:`~repro.xpath.passes.rebuild_union` — this module used to carry
    its own copies which neither deduplicated nor canonically ordered
    members, so its output diverged from the normalizer's form (and missed
    the plan cache).

    A member is dropped when the containment check reports it contained —
    conclusively for the complete engines, or with no counterexample up to
    ``max_nodes`` for the bounded one (in which case the simplification is
    exact up to documents of that size; pick the bound accordingly).
    """
    query = passes.canonical(query)
    members = union_members(query)
    if len(members) == 1:
        return query
    kept = list(members)
    changed = True
    while changed and len(kept) > 1:
        changed = False
        for index, member in enumerate(kept):
            rest = kept[:index] + kept[index + 1:]
            rest_union = rebuild_union(rest)
            verdict = contains(member, rest_union, edtd=edtd, method=method,
                               max_nodes=max_nodes)
            if verdict.contained:
                kept.pop(index)
                changed = True
                break
    return rebuild_union(kept)
