"""Clients for the ``repro serve`` daemon.

:class:`ServerClient` speaks the JSONL socket protocol — the transport
``repro batch --server ADDRESS`` uses: write request records line by
line, read answer records back *in input order* while the server solves
them concurrently.  ``ADDRESS`` is either a unix socket path or
``host:port``.

:class:`HttpClient` is a minimal keep-alive JSON-over-HTTP client for
the daemon's HTTP endpoints (``/healthz``, ``/stats``, ``/v1/solve`` and
friends); :func:`http_json` is its one-shot form.  Both are stdlib-only
(:mod:`http.client`), built for tests, benchmarks and CI smoke — not as
a general HTTP library.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Sequence

__all__ = ["HttpClient", "ServerClient", "http_json"]


def _split_address(address: str) -> tuple[str, int] | None:
    """``host:port`` → ``(host, port)``; ``None`` for unix socket paths."""
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit():
        return host or "127.0.0.1", int(port)
    return None


class ServerClient:
    """Blocking JSONL-protocol client: one connection per call, answers
    in input order."""

    def __init__(self, address: str, connect_timeout: float = 10.0):
        self.address = address
        self.connect_timeout = connect_timeout

    def _connect(self) -> socket.socket:
        endpoint = _split_address(self.address)
        if endpoint is not None:
            return socket.create_connection(
                endpoint, timeout=self.connect_timeout)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        sock.connect(self.address)
        return sock

    def solve_lines(self, lines: Sequence[str]) -> list[dict]:
        """Send raw request lines, return one decoded answer per line.

        ``lines`` must be payload lines only (no blanks or ``#`` comments
        — the caller filters, so the 1-based sequence number the server
        uses as the default ``id`` matches the caller's own numbering).
        A sender thread streams the requests while this thread reads
        answers, so a long pipeline can never deadlock on socket buffers.
        """
        sock = self._connect()
        try:
            sock.settimeout(None)

            def _send() -> None:
                try:
                    payload = "".join(
                        line.rstrip("\n") + "\n" for line in lines)
                    sock.sendall(payload.encode("utf-8"))
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass  # the reader side reports the broken connection

            sender = threading.Thread(target=_send, daemon=True)
            sender.start()
            records = []
            with sock.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    if line.strip():
                        records.append(json.loads(line))
            sender.join()
        finally:
            sock.close()
        if len(records) != len(lines):
            raise RuntimeError(
                f"server answered {len(records)} of {len(lines)} requests "
                "(connection lost or server draining)")
        return records

    def solve_records(self, records: Sequence[dict]) -> list[dict]:
        """Like :meth:`solve_lines`, but takes decoded request records."""
        return self.solve_lines(
            [json.dumps(record, sort_keys=True) for record in records])

    def solve(self, record: dict) -> dict:
        """One request record → its answer record."""
        return self.solve_records([record])[0]


class HttpClient:
    """Keep-alive JSON-over-HTTP client for one daemon address."""

    def __init__(self, address: str, timeout: float = 60.0):
        endpoint = _split_address(address)
        if endpoint is None:
            raise ValueError(f"HTTP needs host:port, got {address!r}")
        self.host, self.port = endpoint
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def request(self, path: str, payload: dict | None = None,
                method: str | None = None) -> tuple[int, dict | None]:
        """``(status, decoded body)``; reconnects once on a dropped
        keep-alive connection."""
        body = None if payload is None \
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        method = method or ("POST" if body is not None else "GET")
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return (response.status,
                        json.loads(data) if data else None)
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def http_json(address: str, path: str, payload: dict | None = None,
              method: str | None = None,
              timeout: float = 60.0) -> tuple[int, dict | None]:
    """One-shot :class:`HttpClient` request."""
    with HttpClient(address, timeout=timeout) as client:
        return client.request(path, payload, method)
