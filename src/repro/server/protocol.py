"""The JSON wire format shared by ``repro batch`` and the daemon.

One *request record* describes one decision problem::

    {"kind": "contains",    "alpha": "...", "beta": "..."}
    {"kind": "equivalent",  "alpha": "...", "beta": "..."}
    {"kind": "satisfiable", "expr": "..."}

with optional ``id`` (echoed on the answer; callers supply a positional
default — the input line number for ``repro batch``, a server-side
sequence number for the daemon — when absent), ``max_nodes``, ``engine``,
and — server only, checked by admission control — ``timeout`` and
``passes``.  One *answer record* carries the verdict plus the outcome
metadata (engine, cache provenance, timing, failures).

:func:`parse_problem_record` and :func:`outcome_record` are the single
implementation of both directions: the batch CLI, the daemon's HTTP and
JSONL endpoints, and the ``repro batch --server`` client all go through
them, so a server-decided batch is record-for-record identical to a
locally decided one.
"""

from __future__ import annotations

from ..analysis.problems import DEFAULT_MAX_NODES, Problem, ProblemKind

__all__ = ["KINDS", "outcome_record", "parse_problem_record"]

#: The request kinds the wire format knows.
KINDS = ("satisfiable", "contains", "equivalent")


def parse_problem_record(
    data,
    *,
    edtd=None,
    default_max_nodes: int = DEFAULT_MAX_NODES,
    default_engine: str | None = None,
) -> tuple[object, str, Problem]:
    """One decoded request object → ``(record_id, kind_name, Problem)``.

    ``record_id`` is the request's ``id`` field, ``None`` when absent —
    the caller substitutes its own default.  Raises :class:`ValueError`
    with a human-readable message on malformed input (not a JSON object,
    unknown ``kind`` or ``engine``, missing expression fields, expression
    syntax errors); callers scope the message (``line N: …``) themselves.
    """
    from ..analysis.registry import default_registry
    from ..xpath import parse_node, parse_path

    if not isinstance(data, dict):
        raise ValueError("expected a JSON object")
    kind_name = data.get("kind", "contains")
    record_id = data.get("id")
    max_nodes = data.get("max_nodes", default_max_nodes)
    engine = data.get("engine", default_engine)
    if engine is not None and engine not in default_registry().names():
        raise ValueError(f"unknown engine {engine!r}")
    try:
        if kind_name == "satisfiable":
            problem = Problem(ProblemKind.SATISFIABILITY,
                              phi=parse_node(data["expr"]), edtd=edtd,
                              max_nodes=max_nodes, engine=engine)
        elif kind_name in ("contains", "equivalent"):
            kind = (ProblemKind.CONTAINMENT if kind_name == "contains"
                    else ProblemKind.EQUIVALENCE)
            problem = Problem(kind, alpha=parse_path(data["alpha"]),
                              beta=parse_path(data["beta"]), edtd=edtd,
                              max_nodes=max_nodes, engine=engine)
        else:
            raise ValueError(f"unknown kind {kind_name!r} (expected "
                             "'satisfiable', 'contains' or 'equivalent')")
    except KeyError as error:
        raise ValueError(
            f"missing field {error.args[0]!r}") from error
    return record_id, kind_name, problem


def outcome_record(record_id, kind_name: str, outcome) -> dict:
    """One :class:`~repro.parallel.runner.BatchOutcome` → its JSON answer
    record (the exact shape ``repro batch`` has always emitted)."""
    record: dict = {"id": record_id, "kind": kind_name}
    result = outcome.result
    if result is None:
        record["error"] = outcome.error
    else:
        record["verdict"] = result.verdict.value
        record["conclusive"] = result.conclusive
        if kind_name in ("contains", "equivalent"):
            record["contained"] = result.contained
            if result.counterexample_pair is not None:
                record["counterexample_pair"] = list(result.counterexample_pair)
    record["engine"] = outcome.engine
    record["cache"] = "hit" if outcome.cache_hit else "miss"
    record["elapsed_s"] = round(outcome.worker_time_s, 6)
    if outcome.race_winner is not None:
        record["race_winner"] = outcome.race_winner
    if outcome.failures:
        record["engine_failures"] = [
            {"engine": failure.engine, "error": failure.error_type,
             "message": failure.message}
            for failure in outcome.failures
        ]
    timeouts = [attempt["engine"] for attempt in outcome.attempts
                if attempt["status"] == "timeout"]
    if timeouts:
        record["timeouts"] = timeouts
    return record
