"""Containment-as-a-service: the ``repro serve`` daemon.

:class:`ReproServer` keeps one resident
:class:`~repro.parallel.runner.ExecutorService` (warm schema sessions,
fork-per-attempt workers) behind one shared two-tier
:class:`~repro.parallel.cache.VerdictCache` and serves decision problems
over two stdlib-only asyncio transports:

* **HTTP/1.1** (``host:port``) — ``POST /v1/solve`` takes one request
  record (see :mod:`repro.server.protocol`); ``POST /v1/contains``,
  ``/v1/satisfiable`` and ``/v1/equivalent`` are kind-pinning aliases.
  ``GET /healthz`` is a liveness probe and ``GET /stats`` reports server
  counters, executor gauges, cache tiers and the schema-session registry
  (the warm-path assertion "zero recompiles" is made from outside the
  process through this endpoint).  Connections are keep-alive.
* **JSONL socket** (a unix socket path or a TCP port) — the ``repro
  batch`` stream protocol: one request record per line in, one answer
  record per line out, *in input order*, with lines solved concurrently
  on the executor (pipelining).  ``repro batch --server`` speaks this.

Request lifecycle: validate + admission-control → parse through the
shared protocol (the expressions then flow through the same
pass-pipeline canonicalization every local caller gets, inside the
executor) → cache probe and solve on the resident executor.  The asyncio
loop never blocks on a solve: submissions return
``concurrent.futures.Future``\\ s that are awaited via
:func:`asyncio.wrap_future`.

Admission control rejects (HTTP 400 / an ``error`` answer record)
requests that ask for an unknown or un-admitted engine, a per-request
``timeout`` beyond the server's cap, a ``max_nodes`` beyond the server's
cap, or a ``passes`` level other than the one the server runs (pipeline
level is part of the cache key; a mismatched level would silently fork
the cache namespace).  Load shedding: at most ``max_inflight`` solve
requests may be admitted concurrently; beyond that the server answers
429 (HTTP) / an ``error`` record (JSONL) immediately instead of queueing
without bound.

Shutdown is a graceful *drain*: on SIGTERM/SIGINT (or
:meth:`ServerHandle.stop`) the listeners close first, in-flight requests
get ``drain_s`` seconds to finish, then the executor shuts down.

:func:`start_in_thread` runs the whole daemon on a background thread —
the form the tests and benchmarks use — and returns a
:class:`ServerHandle` with the bound addresses.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass

from ..analysis.problems import DEFAULT_MAX_NODES
from ..parallel.cache import VerdictCache
from ..parallel.runner import ExecutorService
from .protocol import outcome_record, parse_problem_record

__all__ = ["ReproServer", "ServerConfig", "ServerHandle", "start_in_thread"]

def _reset_signals_in_child() -> None:
    """Fork hygiene for solver children (see session.py for the session
    registry's half): a worker forked while the daemon's loop has signal
    handlers installed inherits both the handlers and the loop's wakeup
    pipe.  The coordinator's ``terminate()`` would then not kill the
    child — its inherited handler just writes the signal number into the
    *shared* wakeup pipe, which the parent's loop reads as a phantom
    SIGTERM and drains the whole daemon.  Restore default dispositions in
    every forked child."""
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_signals_in_child)


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Counters the server always reports (so ``/stats`` has a stable shape).
_COUNTER_KEYS = ("requests", "http_requests", "jsonl_requests", "solved",
                 "unsolved", "cache_hits", "bad_requests", "shed", "errors")


@dataclass
class ServerConfig:
    """Everything ``repro serve`` can be told.

    ``port=0`` binds an ephemeral HTTP port (read it back from
    ``ReproServer.http_port``); ``port=None`` disables HTTP.  The JSONL
    transport listens on ``jsonl_path`` (a unix socket) when set, else on
    ``jsonl_port`` when set, else not at all.
    """

    host: str = "127.0.0.1"
    port: int | None = 0
    jsonl_path: str | None = None
    jsonl_port: int | None = None
    #: Executor shape (see :class:`ExecutorService`).
    workers: int | None = None
    timeout: float | None = None
    race: bool = False
    #: Verdict cache: directory (``None`` = the default), disable switch,
    #: and disk-tier bounds enforced on every store.
    cache_dir: str | None = None
    no_cache: bool = False
    cache_max_entries: int | None = None
    cache_max_bytes: int | None = None
    #: Schema file applied to every request (the batch ``--schema`` flag).
    schema: str | None = None
    #: Rewrite-pipeline level the server runs; requests asking for a
    #: different level are rejected (400) — see the module docstring.
    passes: str = "full"
    #: Admission caps: per-request ``timeout`` ceiling, per-request
    #: ``max_nodes`` ceiling and default, engine allowlist (``None`` =
    #: every registered engine), and the in-flight shedding bound.
    max_timeout: float = 600.0
    max_nodes_cap: int = 12
    default_max_nodes: int = DEFAULT_MAX_NODES
    engines: tuple[str, ...] | None = None
    max_inflight: int = 64
    #: Seconds a graceful drain waits for in-flight requests.
    drain_s: float = 10.0


class _RequestError(ValueError):
    """An admission-control or validation rejection (answered with 400)."""


class ReproServer:
    """The daemon: resident executor + shared cache + asyncio front-ends.

    Construct it, then either ``asyncio.run(server.serve_forever())``
    (the CLI path, installs signal handlers) or drive
    :meth:`start`/:meth:`drain` yourself inside a running loop
    (:func:`start_in_thread` does).
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        if self.config.schema:
            from ..cli import load_schema

            self.edtd = load_schema(self.config.schema)
        else:
            self.edtd = None
        if self.config.no_cache:
            self.cache: VerdictCache | None = None
        else:
            self.cache = VerdictCache(
                self.config.cache_dir,
                max_entries=self.config.cache_max_entries,
                max_bytes=self.config.cache_max_bytes)
        self.service = ExecutorService(
            workers=self.config.workers, timeout=self.config.timeout,
            race=self.config.race, cache=self.cache)
        self._counters = {key: 0 for key in _COUNTER_KEYS}
        self._lock = threading.Lock()
        self._inflight = 0
        self._seq = 0
        self._started_mono = time.monotonic()
        self._servers: list[asyncio.AbstractServer] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._draining = False
        self.http_port: int | None = None
        self.jsonl_port: int | None = None
        self.jsonl_path: str | None = None

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the configured listeners inside the running loop."""
        from ..xpath import passes

        passes.set_default_pipeline(self.config.passes)
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        config = self.config
        if config.port is not None:
            server = await asyncio.start_server(
                self._handle_http, config.host, config.port)
            self._servers.append(server)
            self.http_port = server.sockets[0].getsockname()[1]
        if config.jsonl_path is not None:
            path = str(config.jsonl_path)
            with contextlib.suppress(OSError):
                os.unlink(path)
            server = await asyncio.start_unix_server(
                self._handle_jsonl, path=path)
            self._servers.append(server)
            self.jsonl_path = path
        elif config.jsonl_port is not None:
            server = await asyncio.start_server(
                self._handle_jsonl, config.host, config.jsonl_port)
            self._servers.append(server)
            self.jsonl_port = server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """CLI entry point: start (unless the caller already did, e.g. to
        print a banner), install SIGTERM/SIGINT → drain, park."""
        if self._stopped is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(self.drain()))
        assert self._stopped is not None
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, let in-flight requests
        finish (bounded by ``drain_s``), then shut the executor down."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        deadline = time.monotonic() + self.config.drain_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            await asyncio.sleep(0.02)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.close(wait=False))
        if self.jsonl_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.jsonl_path)
        if self._stopped is not None:
            self._stopped.set()

    # ----------------------------------------------------- admission + solve

    def _count(self, key: str, value: int = 1) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def _admit(self) -> bool:
        with self._lock:
            if self._inflight >= self.config.max_inflight:
                return False
            self._inflight += 1
            return True

    def _release_slot(self) -> None:
        with self._lock:
            self._inflight -= 1

    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _validate(self, data) -> tuple[object, str, "object", float | None]:
        """Admission control + protocol parse; raises :class:`_RequestError`
        on anything the server refuses to run."""
        if not isinstance(data, dict):
            raise _RequestError("expected a JSON object")
        config = self.config
        passes_level = data.get("passes")
        if passes_level is not None and passes_level != config.passes:
            raise _RequestError(
                f"this server runs rewrite passes {config.passes!r}; "
                f"per-request passes {passes_level!r} would fork the cache "
                "namespace and is not admitted")
        timeout = data.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise _RequestError(
                    f"bad timeout {data.get('timeout')!r}") from None
            if not 0 < timeout <= config.max_timeout:
                raise _RequestError(
                    "timeout must be in "
                    f"(0, {config.max_timeout:g}] seconds")
        max_nodes = data.get("max_nodes")
        if max_nodes is not None:
            if not isinstance(max_nodes, int) or isinstance(max_nodes, bool) \
                    or not 1 <= max_nodes <= config.max_nodes_cap:
                raise _RequestError(
                    "max_nodes must be an integer in "
                    f"[1, {config.max_nodes_cap}]")
        engine = data.get("engine")
        if engine is not None and config.engines is not None \
                and engine not in config.engines:
            raise _RequestError(
                f"engine {engine!r} is not admitted by this server "
                f"(admitted: {', '.join(config.engines)})")
        try:
            record_id, kind_name, problem = parse_problem_record(
                data, edtd=self.edtd,
                default_max_nodes=config.default_max_nodes)
        except ValueError as error:
            raise _RequestError(str(error)) from error
        return record_id, kind_name, problem, timeout

    async def _solve(self, data, *, default_id=None) -> tuple[int, dict]:
        """One solve request end to end; returns ``(status, record)``."""
        self._count("requests")
        if not self._admit():
            self._count("shed")
            return 429, {"id": default_id,
                         "error": "server overloaded "
                                  f"({self.config.max_inflight} requests "
                                  "in flight); retry later"}
        try:
            try:
                record_id, kind_name, problem, timeout = self._validate(data)
            except _RequestError as error:
                self._count("bad_requests")
                record_id = data.get("id", default_id) \
                    if isinstance(data, dict) else default_id
                return 400, {"id": record_id, "error": str(error)}
            if record_id is None:
                record_id = default_id if default_id is not None \
                    else self._next_id()
            try:
                if timeout is None:
                    future = self.service.submit(problem)
                else:
                    future = self.service.submit(problem, timeout=timeout)
                outcome = await asyncio.wrap_future(future)
            except Exception as error:  # noqa: BLE001 - answered, not raised
                self._count("errors")
                return 500, {"id": record_id,
                             "error": f"{type(error).__name__}: {error}"}
            if outcome.result is None:
                self._count("unsolved")
            else:
                self._count("solved")
                if outcome.cache_hit:
                    self._count("cache_hits")
            return 200, outcome_record(record_id, kind_name, outcome)
        finally:
            self._release_slot()

    def stats_payload(self) -> dict:
        """The ``/stats`` document: server counters, executor gauges,
        cache tiers, schema-session registry."""
        from ..analysis.session import registry_stats

        with self._lock:
            counters = dict(self._counters)
            inflight = self._inflight
        return {
            "status": "draining" if self._draining else "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "passes": self.config.passes,
            "server": {**counters, "inflight": inflight,
                       "max_inflight": self.config.max_inflight},
            "executor": self.service.stats(),
            "sessions": registry_stats(),
            "cache": self.cache.info() if self.cache is not None else None,
        }

    # ----------------------------------------------------------------- HTTP

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._http_respond(
                        writer, 400, {"error": "malformed request line"})
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = 0
                body = await reader.readexactly(length) if length else b""
                keep_alive = (version == "HTTP/1.1"
                              and headers.get("connection", "").lower()
                              != "close")
                status, payload = await self._dispatch_http(
                    method, target, body)
                await self._http_respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch_http(self, method: str, target: str,
                             body: bytes) -> tuple[int, dict]:
        self._count("http_requests")
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, {"status": "draining" if self._draining else "ok",
                         "uptime_s": round(
                             time.monotonic() - self._started_mono, 3)}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self.stats_payload()
        if path in ("/v1/solve", "/v1/contains", "/v1/satisfiable",
                    "/v1/equivalent"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}
            try:
                data = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                self._count("bad_requests")
                return 400, {"error": f"invalid JSON: {error}"}
            if path != "/v1/solve" and isinstance(data, dict):
                # Kind-pinning aliases: the path wins over the body.
                data = {**data, "kind": path.rsplit("/", 1)[1]}
            return await self._solve(data)
        return 404, {"error": f"no route {method} {path}"}

    @staticmethod
    async def _http_respond(writer: asyncio.StreamWriter, status: int,
                            payload: dict, keep_alive: bool = False) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ---------------------------------------------------------------- JSONL

    async def _handle_jsonl(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """The batch stream protocol: answers come back in input order
        while the underlying solves run concurrently (a FIFO of futures
        between the reader loop and one write-back task)."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        async def _writeback() -> None:
            while True:
                item = await queue.get()
                if item is None:
                    return
                _, record = await item
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n")
                    .encode("utf-8"))
                await writer.drain()

        writeback = asyncio.ensure_future(_writeback())
        number = 0
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace").strip()
                if not text or text.startswith("#"):
                    continue
                number += 1
                self._count("jsonl_requests")
                try:
                    data = json.loads(text)
                except ValueError as error:
                    self._count("bad_requests")
                    ready: asyncio.Future = loop.create_future()
                    ready.set_result(
                        (400, {"id": number,
                               "error": f"invalid JSON: {error}"}))
                    queue.put_nowait(ready)
                    continue
                queue.put_nowait(asyncio.ensure_future(
                    self._solve(data, default_id=number)))
            queue.put_nowait(None)
            await writeback
        except (ConnectionError, asyncio.IncompleteReadError):
            writeback.cancel()
        finally:
            if not writeback.done():
                writeback.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


class ServerHandle:
    """A daemon running on a background thread (:func:`start_in_thread`):
    bound addresses + a blocking :meth:`stop` that drains and joins."""

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def http_address(self) -> str | None:
        if self.server.http_port is None:
            return None
        return f"{self.server.config.host}:{self.server.http_port}"

    @property
    def jsonl_address(self) -> str | None:
        if self.server.jsonl_path is not None:
            return self.server.jsonl_path
        if self.server.jsonl_port is not None:
            return f"{self.server.config.host}:{self.server.jsonl_port}"
        return None

    def stop(self, timeout: float = 30.0) -> None:
        loop = self.server._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self.server.drain()))
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(config: ServerConfig | None = None) -> ServerHandle:
    """Run a :class:`ReproServer` on a daemon thread and wait until its
    listeners are bound; raises whatever :meth:`ReproServer.start` raised
    (bad schema file, unbindable port) instead of returning a dead handle."""
    server = ReproServer(config)
    ready = threading.Event()
    failures: list[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - reported to caller
            failures.append(error)
            ready.set()
            return
        ready.set()
        assert server._stopped is not None
        await server._stopped.wait()

    def _run() -> None:
        try:
            asyncio.run(_main())
        except BaseException as error:  # noqa: BLE001 - reported to caller
            failures.append(error)
            ready.set()

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    if failures:
        raise failures[0]
    return ServerHandle(server, thread)
