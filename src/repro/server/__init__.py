"""Containment-as-a-service: a resident daemon over the parallel backend.

``repro serve`` keeps one :class:`~repro.parallel.runner.ExecutorService`
(warm schema sessions, fork-per-attempt workers) behind one two-tier
:class:`~repro.parallel.cache.VerdictCache` and answers decision problems
over HTTP and a JSONL socket — so a request stream amortizes schema
compilation and verdict caching across *requests*, not just within one
batch.  Everything is stdlib-only asyncio.

* :mod:`repro.server.protocol` — the request/answer record format shared
  with ``repro batch`` (one implementation, byte-compatible records).
* :mod:`repro.server.daemon` — :class:`ServerConfig`,
  :class:`ReproServer`, :func:`start_in_thread`.
* :mod:`repro.server.client` — :class:`ServerClient` (the JSONL client
  behind ``repro batch --server``) and a small keep-alive HTTP client.
"""

from .client import HttpClient, ServerClient, http_json
from .daemon import ReproServer, ServerConfig, ServerHandle, start_in_thread
from .protocol import outcome_record, parse_problem_record

__all__ = [
    "HttpClient",
    "ReproServer",
    "ServerClient",
    "ServerConfig",
    "ServerHandle",
    "http_json",
    "outcome_record",
    "parse_problem_record",
    "start_in_thread",
]
