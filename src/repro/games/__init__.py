"""Finite two-player games substrate (parity games, Zielonka's algorithm)."""

from .parity import ParityGame, solve_parity, solve_cobuchi

__all__ = ["ParityGame", "solve_parity", "solve_cobuchi"]
