"""Parity games and Zielonka's algorithm.

The acceptance condition of the paper's 2ATAs (Definition 9) is a parity
condition; whether a given 2ATA accepts a given finite XML tree reduces to
deciding the winner of a finite parity game on the product of the tree and
the automaton (:mod:`repro.automata.acceptance`).  This module provides the
generic game substrate:

* :func:`solve_parity` — Zielonka's recursive algorithm, any priorities;
* :func:`solve_cobuchi` — an independent fixpoint solver for the two-priority
  case (priorities ⊆ {1, 2}), used to cross-check Zielonka in tests.

Conventions: player 0 ("Eve", the automaton) wins an infinite play iff the
*minimum* priority seen infinitely often is even — matching Definition 9,
where the lowest number assigned to a state occurring infinitely often must
be even.  Every position must have at least one successor (build sinks as
self-loops: an even-priority self-loop is winning for Eve, odd for Adam).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from .. import obs

__all__ = ["ParityGame", "solve_parity", "solve_cobuchi"]

Position = Hashable


@dataclass
class ParityGame:
    """A finite two-player parity game.

    ``owner[v]`` is 0 (Eve) or 1 (Adam); ``priority[v]`` a nonnegative int;
    ``moves[v]`` the nonempty tuple of successors.
    """

    owner: dict[Position, int]
    priority: dict[Position, int]
    moves: dict[Position, tuple[Position, ...]]
    _predecessors: dict[Position, list[Position]] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        positions = set(self.owner)
        if set(self.priority) != positions or set(self.moves) != positions:
            raise ValueError("owner, priority and moves must share one key set")
        for position, succs in self.moves.items():
            if not succs:
                raise ValueError(
                    f"position {position!r} has no moves; encode dead ends as "
                    "self-loop sinks"
                )
            for succ in succs:
                if succ not in positions:
                    raise ValueError(f"move {position!r} -> {succ!r} leaves the game")

    @property
    def positions(self) -> set[Position]:
        return set(self.owner)

    def predecessors(self) -> dict[Position, list[Position]]:
        if self._predecessors is None:
            preds: dict[Position, list[Position]] = {v: [] for v in self.owner}
            for source, succs in self.moves.items():
                for target in succs:
                    preds[target].append(source)
            self._predecessors = preds
        return self._predecessors


def _attractor(game: ParityGame, player: int, targets: Iterable[Position],
               region: set[Position]) -> set[Position]:
    """The ``player``-attractor of ``targets`` inside ``region``.

    ``region`` is the current subgame's position set; moves leaving it are
    ignored (Zielonka only ever removes attractors, so subgames stay total).
    """
    preds = game.predecessors()
    attr = {v for v in targets if v in region}
    out_degree = {
        v: sum(1 for s in game.moves[v] if s in region) for v in region
    }
    frontier = list(attr)
    while frontier:
        position = frontier.pop()
        for pred in preds[position]:
            if pred not in region or pred in attr:
                continue
            if game.owner[pred] == player:
                attr.add(pred)
                frontier.append(pred)
            else:
                out_degree[pred] -= 1
                if out_degree[pred] == 0:
                    attr.add(pred)
                    frontier.append(pred)
    return attr


def _bits(mask: int):
    """Iterate the set bit indices of ``mask`` (lowest first)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def solve_parity(game: ParityGame) -> tuple[set[Position], set[Position]]:
    """Zielonka's algorithm on a dense integer encoding.

    Positions get dense ids; every region, attractor and winning set is an
    int bitset, so the recursion manipulates machine integers instead of
    copying Python sets (``region - attr`` is one ``&~``, membership one
    shift) — the per-recursion set copies that used to dominate
    ``parity.subgame_size``-heavy solves are gone.  The public contract is
    unchanged: ``(win_eve, win_adam)`` as sets of the caller's positions.

    Profiling: recursion/attractor counts and subgame sizes accumulate in
    plain locals while solving and are emitted to the obs layer once at the
    end — in a ``finally``, so a solver that unwinds mid-recursion (guard
    limits, recursion depth) still flushes what it counted.
    """
    positions = list(game.owner)
    index = {position: i for i, position in enumerate(positions)}
    count = len(positions)
    owner = [game.owner[position] for position in positions]
    priority = [game.priority[position] for position in positions]
    succs = [tuple(index[s] for s in game.moves[position])
             for position in positions]
    preds: list[list[int]] = [[] for _ in range(count)]
    for source, targets in enumerate(succs):
        for target in targets:
            preds[target].append(source)
    #: Per distinct priority (ascending), the bitset of its positions —
    #: the min-priority scan per subgame is a mask intersection.
    by_priority: list[tuple[int, int]] = []
    for prio in sorted(set(priority)):
        mask = 0
        for i, p in enumerate(priority):
            if p == prio:
                mask |= 1 << i
        by_priority.append((prio, mask))

    recursions = 0
    attractors = 0
    lifted = 0  # positions pulled into attractors across the whole solve
    subgame_sizes: list[int] = []

    def attract(player: int, targets: int, region: int) -> int:
        """The ``player``-attractor of ``targets`` inside ``region``."""
        attr = targets & region
        degree = [-1] * count  # lazy out-degree within the region
        frontier = list(_bits(attr))
        while frontier:
            position = frontier.pop()
            for pred in preds[position]:
                bit = 1 << pred
                if not region & bit or attr & bit:
                    continue
                if owner[pred] == player:
                    attr |= bit
                    frontier.append(pred)
                else:
                    if degree[pred] < 0:
                        degree[pred] = sum(1 for s in succs[pred]
                                           if region >> s & 1)
                    degree[pred] -= 1
                    if degree[pred] == 0:
                        attr |= bit
                        frontier.append(pred)
        return attr

    def solve(region: int) -> tuple[int, int]:
        nonlocal recursions, attractors, lifted
        if not region:
            return 0, 0
        recursions += 1
        subgame_sizes.append(region.bit_count())
        for lowest, mask in by_priority:
            best = mask & region
            if best:
                break
        player = lowest % 2  # 0 if the lowest priority is even (good for Eve)
        opponent = 1 - player
        attr = attract(player, best, region)
        attractors += 1
        lifted += (attr & ~best).bit_count()
        win_sub = solve(region & ~attr)
        if not win_sub[opponent]:
            return (region, 0) if player == 0 else (0, region)
        escape = attract(opponent, win_sub[opponent], region)
        attractors += 1
        lifted += (escape & ~win_sub[opponent]).bit_count()
        win_rest = list(solve(region & ~escape))
        win_rest[opponent] |= escape
        return (win_rest[0], win_rest[1])

    try:
        eve_bits, adam_bits = solve((1 << count) - 1)
    finally:
        # Counters flush even when the recursion above unwinds with an
        # exception — a mid-solve failure must not silently drop the
        # profile of the work it did perform.
        if obs.is_enabled():
            obs.count("parity.games_solved")
            obs.count("parity.recursions", recursions)
            obs.count("parity.attractors", attractors)
            obs.count("parity.lifted", lifted)
            obs.gauge("parity.positions", count)
            for size in subgame_sizes:
                obs.observe("parity.subgame_size", size)
    return ({positions[i] for i in _bits(eve_bits)},
            {positions[i] for i in _bits(adam_bits)})


def solve_cobuchi(game: ParityGame) -> tuple[set[Position], set[Position]]:
    """Direct solver for two-priority games with priorities ⊆ {1, 2}.

    Eve wins a play iff priority-1 positions occur only finitely often
    (min-inf-even with priorities {1, 2} means eventually only 2s).  This is
    a co-Büchi game for Eve; we solve it with the classical nested fixpoint:
    repeatedly compute the set from which Adam can force infinitely many
    priority-1 visits, and remove its Adam-attractor.

    Independent of :func:`solve_parity`; used to cross-check it.
    """
    bad_priorities = set(game.priority.values()) - {1, 2}
    if bad_priorities:
        raise ValueError(f"solve_cobuchi needs priorities in {{1,2}}, got {bad_priorities}")

    region = game.positions
    win_adam: set[Position] = set()
    while True:
        # Adam wins (within `region`) iff he can force visiting priority-1
        # positions infinitely often: a Büchi objective with target set ones.
        ones = {v for v in region if game.priority[v] == 1}
        recur = _buchi_win(game, player=1, targets=ones, region=region)
        if not recur:
            return region, win_adam
        escape = _attractor(game, 1, recur, region)
        win_adam |= escape
        region = region - escape


def _buchi_win(game: ParityGame, player: int, targets: set[Position],
               region: set[Position]) -> set[Position]:
    """Positions in ``region`` from which ``player`` can force visiting
    ``targets`` infinitely often (standard greatest-fixpoint computation)."""
    current = set(targets)
    while True:
        # Positions from which player can reach `current` in >= 1 step.
        reach = _attractor_strict(game, player, current, region)
        new = {v for v in targets if v in reach}
        if new == current:
            return _attractor(game, player, new, region) & region if new else set()
        current = new


def _controlled_predecessors(game: ParityGame, player: int,
                             targets: set[Position],
                             region: set[Position]) -> set[Position]:
    """``CPre``: positions from which ``player`` forces entering ``targets``
    in exactly one step (within ``region``)."""
    cpre: set[Position] = set()
    for position in region:
        succs = [s for s in game.moves[position] if s in region]
        if not succs:
            continue
        if game.owner[position] == player:
            if any(s in targets for s in succs):
                cpre.add(position)
        elif all(s in targets for s in succs):
            cpre.add(position)
    return cpre


def _attractor_strict(game: ParityGame, player: int, targets: set[Position],
                      region: set[Position]) -> set[Position]:
    """Positions from which ``player`` forces reaching ``targets`` in at
    least one step (targets themselves qualify only via a successor):
    ``CPre_player(Attr_player(targets))``."""
    attr = _attractor(game, player, targets, region)
    return _controlled_predecessors(game, player, attr, region)
