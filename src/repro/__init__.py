"""repro — a reproduction of ten Cate & Lutz, "The Complexity of Query
Containment in Expressive Fragments of XPath 2.0" (PODS 2007 / JACM 2009).

The package implements CoreXPath and its XPath 2.0-inspired extensions
(path equality ≈, path intersection ∩, path complementation −, for-loops,
and transitive closure *), the XML-tree and (E)DTD substrates, the paper's
decision procedures and translations, the §6/§7 hardness reductions, and
the §8 succinctness measurements.

Quickstart::

    from repro import parse_path, contains
    result = contains(parse_path("down/down[p]"), parse_path("down/down"))
    assert result.contained and result.conclusive

Subpackages: :mod:`repro.trees`, :mod:`repro.regexes`, :mod:`repro.edtd`,
:mod:`repro.xpath`, :mod:`repro.semantics`, :mod:`repro.games`,
:mod:`repro.automata`, :mod:`repro.analysis`, :mod:`repro.lowerbounds`,
:mod:`repro.succinctness`, :mod:`repro.obs` (observability: tracing,
counters, run records — see ``satisfiable(..., stats=True)``), and
:mod:`repro.parallel` (batch execution on a worker pool with engine
racing, timeouts, and a persistent verdict cache — see
``contains_many``/``satisfiable_many`` and ``python -m repro batch``).
"""

from . import obs
from .obs import RunRecord
from .trees import XMLTree, MultiLabelTree, from_xml, to_xml
from .xpath import (
    parse_path,
    parse_node,
    to_source,
    to_paper,
    size,
    Fragment,
    fragment_of,
)
from .semantics import evaluate_path, evaluate_nodes, holds_somewhere
from .edtd import EDTD, DTD, book_edtd
from .analysis import satisfiable, contains, equivalent, Verdict
from .parallel import (
    BatchRunner,
    VerdictCache,
    contains_many,
    run_batch,
    satisfiable_many,
)

__version__ = "1.0.0"

__all__ = [
    "XMLTree", "MultiLabelTree", "from_xml", "to_xml",
    "parse_path", "parse_node", "to_source", "to_paper", "size",
    "Fragment", "fragment_of",
    "evaluate_path", "evaluate_nodes", "holds_somewhere",
    "EDTD", "DTD", "book_edtd",
    "satisfiable", "contains", "equivalent", "Verdict",
    "obs", "RunRecord",
    "__version__",
]
