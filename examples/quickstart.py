"""Quickstart: parse XPath expressions, evaluate them on documents, and
decide containment/satisfiability.

Run with:  python examples/quickstart.py
"""

from repro import (
    book_edtd,
    contains,
    evaluate_path,
    from_xml,
    parse_node,
    parse_path,
    satisfiable,
    to_paper,
)

DOCUMENT = """
<Book>
  <Chapter>
    <Section><Paragraph/><Image/></Section>
    <Section><Section><Image/></Section><Paragraph/></Section>
  </Chapter>
  <Chapter><Section><Image/></Section></Chapter>
</Book>
"""


def main() -> None:
    # 1. Parse a document and a query; evaluate the query.
    tree = from_xml(DOCUMENT)
    query = parse_path("down*[Section]/down[Image]")
    print(f"query (paper notation): {to_paper(query)}")
    relation = evaluate_path(tree, query)
    images = sorted(relation.get(tree.root, frozenset()))
    print(f"images directly under a section: nodes {images}")

    # 2. Containment: every filtered step is contained in the plain one.
    specific = parse_path("down[Chapter]/down[Section]")
    general = parse_path("down/down")
    verdict = contains(specific, general)
    print(f"'{to_paper(specific)}' ⊑ '{to_paper(general)}': "
          f"{verdict.contained} (conclusive: {verdict.conclusive})")

    # 3. Non-containment comes with a counterexample document.
    verdict = contains(general, specific)
    print(f"converse containment: {verdict.contained}; counterexample tree: "
          f"{verdict.counterexample.to_spec()} pair {verdict.counterexample_pair}")

    # 4. Satisfiability with intersection — decided conclusively by the
    #    Figure 2 engine for downward-∩ inputs.
    phi = parse_node("<down[Image] intersect down[Paragraph]>")
    result = satisfiable(phi)
    print(f"'{to_paper(phi)}' satisfiable: {bool(result)} "
          f"(conclusive: {result.conclusive})")

    # 5. The same question relative to the paper's book schema.
    phi2 = parse_node("Paragraph and <down>")
    schema_result = satisfiable(phi2, edtd=book_edtd())
    print(f"'{to_paper(phi2)}' satisfiable under the book DTD: "
          f"{bool(schema_result)}")


if __name__ == "__main__":
    main()
