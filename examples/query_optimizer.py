"""A small query optimizer built on the containment API: deduplicate a query
workload, drop redundant union members, and order queries by specificity —
the "redundancy elimination in answers to multiple XPath queries" use case
the paper cites (Tajima & Fukui 2004).

Run with:  python examples/query_optimizer.py
"""

from repro import contains, equivalent, parse_path, to_paper
from repro.xpath.ast import PathExpr, Union

WORKLOAD = [
    "down[Chapter]/down[Section]",
    "down/down[Section]",
    "down/down",
    "down[Chapter]/down[Section] union down/down",
    "down/down[Section] intersect down[Chapter]/down",
    "down+[Image]",
    "down/down[Image]",
]


# The pairwise sweeps use the fast bounded engine (method="bounded"):
# 80+ containment calls through the conclusive Figure 2 pipeline would be
# needlessly slow for an interactive tool, and counterexample search up to
# 4-node documents is exact for witnesses it finds.


def find_equivalences(paths: dict[str, PathExpr]) -> list[tuple[str, str]]:
    names = sorted(paths)
    found = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if equivalent(paths[a], paths[b], method="bounded",
                          max_nodes=4).contained:
                found.append((a, b))
    return found


def containment_order(paths: dict[str, PathExpr]) -> list[tuple[str, str]]:
    edges = []
    for a in sorted(paths):
        for b in sorted(paths):
            if a != b and contains(paths[a], paths[b], method="bounded",
                                   max_nodes=4).contained:
                edges.append((a, b))
    return edges


def simplify_unions(paths: dict[str, PathExpr]) -> None:
    print("\n-- redundant union members --")
    for name, path in sorted(paths.items()):
        if not isinstance(path, Union):
            continue
        left, right = path.left, path.right
        if contains(left, right, method="bounded", max_nodes=4).contained:
            print(f"{name}: left member is redundant; "
                  f"simplifies to {to_paper(right)}")
        elif contains(right, left, method="bounded", max_nodes=4).contained:
            print(f"{name}: right member is redundant; "
                  f"simplifies to {to_paper(left)}")


def main() -> None:
    paths = {src: parse_path(src) for src in WORKLOAD}

    print("-- workload --")
    for src in WORKLOAD:
        print(f"  {to_paper(paths[src])}")

    print("\n-- semantically equivalent query pairs --")
    for a, b in find_equivalences(paths):
        print(f"  {to_paper(paths[a])}  ≡  {to_paper(paths[b])}")

    print("\n-- strict containments (α ⊑ β, α ≠ β) --")
    equivs = set(map(frozenset, find_equivalences(paths)))
    for a, b in containment_order(paths):
        if frozenset((a, b)) not in equivs:
            print(f"  {to_paper(paths[a])}  ⊑  {to_paper(paths[b])}")

    simplify_unions(paths)


if __name__ == "__main__":
    main()
