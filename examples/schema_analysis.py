"""Schema-aware static analysis: EDTD conformance, schema-dependent
containment, and the Proposition 5/6 reductions in action.

Run with:  python examples/schema_analysis.py
"""

from repro import DTD, contains, parse_node, parse_path, satisfiable, to_paper
from repro.analysis import edtd_sat_to_sat, node_satisfiable
from repro.edtd import book_edtd, nested_sections_edtd
from repro.trees import XMLTree


def schema_dependent_containment() -> None:
    print("== containment that only holds under a schema ==")
    book = book_edtd()
    # Only Chapters and Sections can have Section children.
    alpha = parse_path("down[Section]")
    beta = parse_path(".[Chapter or Section]/down")
    unrestricted = contains(alpha, beta, max_nodes=4)
    restricted = contains(alpha, beta, edtd=book)
    print(f"α = {to_paper(alpha)}")
    print(f"β = {to_paper(beta)}")
    print(f"without schema: contained = {unrestricted.contained}")
    if unrestricted.counterexample is not None:
        print(f"  counterexample: {unrestricted.counterexample.to_spec()}")
    print(f"under the book DTD: contained = {restricted.contained} "
          f"(conclusive: {restricted.conclusive})")


def beyond_dtds() -> None:
    print("\n== an EDTD no DTD can express (§2.1) ==")
    edtd = nested_sections_edtd(3)
    deep3 = XMLTree.build(("s", [("s", [("s", [])])]))
    deep4 = XMLTree.build(("s", [("s", [("s", [("s", [])])])]))
    print(f"sections nested 3 deep conform: {edtd.conforms(deep3)}")
    print(f"sections nested 4 deep conform: {edtd.conforms(deep4)}")
    phi = parse_node("s and <down[s and <down[s and <down[s]>]>]>")
    result = satisfiable(phi, edtd=edtd)
    print(f"'4 nested sections' satisfiable under the EDTD: {bool(result)} "
          f"(conclusive: {result.conclusive})")


def proposition6_roundtrip() -> None:
    print("\n== Proposition 6: schemas compiled away ==")
    from repro.analysis.reductions import encode_witness_tree
    from repro.semantics import evaluate_nodes
    from repro.xpath.measures import size

    schema = DTD({"recipe": "title step step*", "title": "eps", "step": "eps"},
                 root="recipe")
    phi = parse_node("recipe and <down[title]> and <down[step]>")
    reduction = edtd_sat_to_sat(phi, schema)
    print(f"input:   |φ| = {size(phi)} with a schema of size {schema.size()}")
    print(f"output:  |φ'| = {size(reduction.formula)} over witness labels, "
          "no schema")
    # The witness-label alphabet is too large for blind search; encode a
    # conforming model constructively instead.
    document = XMLTree.build(("recipe", ["title", "step", "step"]))
    encoded = encode_witness_tree(document, schema)
    holds = 0 in evaluate_nodes(encoded, reduction.formula)
    print(f"the encoded witness tree satisfies the output formula: {holds}")
    decoded, _ = reduction.decode(encoded, 0)
    print(f"decoded back: {decoded.to_spec()}")
    print(f"decoded witness conforms: {schema.conforms(decoded)}")


def main() -> None:
    schema_dependent_containment()
    beyond_dtds()
    proposition6_roundtrip()


if __name__ == "__main__":
    main()
