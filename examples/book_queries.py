"""The paper's §2.2 running examples on the Book EDTD, one per extension:

* CoreXPath(≈): the first image of each chapter, via a path equality;
* CoreXPath(∩): following images within the same chapter;
* CoreXPath(−): the *first* following image within the same chapter;
* CoreXPath(*): the first image of each chapter again, by a first-child
  walk that skips image-less subtrees.

Run with:  python examples/book_queries.py
"""

import random

from repro import evaluate_path, parse_path, to_paper
from repro.edtd import book_edtd, random_conforming_tree
from repro.trees import to_indented

FIRST_IMAGE_EQ = parse_path(
    "down*[Image and not eq((up*/(left+/down*))[Image], "
    "up+[Chapter]/down+[Image])]"
)
FOLLOWING_IMAGES_CAP = parse_path(
    "(up*/(right+/down*))[Image] intersect up+[Chapter]/down+[Image]"
)
FIRST_FOLLOWING_MINUS = parse_path(
    "((up*/(right+/down*))[Image] intersect up+[Chapter]/down+[Image])"
    " except ((up*/(right+/down*))[Image]/(up*/(right+/down*))[Image])"
)
FIRST_IMAGE_STAR = parse_path(
    "down[Chapter]/(down[not <left>] union "
    ".[not <down*[Image]>]/right)*[Image]"
)


def main() -> None:
    book = book_edtd()
    rng = random.Random(2024)
    tree = random_conforming_tree(book, rng, max_nodes=30)
    print("document:")
    print(to_indented(tree))

    print(f"\nCoreXPath(≈) — first image per chapter:\n  {to_paper(FIRST_IMAGE_EQ)}")
    first_images = sorted(evaluate_path(tree, FIRST_IMAGE_EQ).get(0, frozenset()))
    print(f"  -> nodes {first_images}")

    print(f"\nCoreXPath(*) — the same, via a guided walk:")
    via_star = sorted(evaluate_path(tree, FIRST_IMAGE_STAR).get(0, frozenset()))
    print(f"  -> nodes {via_star}")
    assert via_star == first_images, "the two formulations must agree"

    if first_images:
        anchor = first_images[0]
        print(f"\nCoreXPath(∩) — images after node {anchor} in its chapter:")
        following = evaluate_path(tree, FOLLOWING_IMAGES_CAP)
        print(f"  -> {sorted(following.get(anchor, frozenset()))}")

        print(f"\nCoreXPath(−) — only the first of those:")
        first_following = evaluate_path(tree, FIRST_FOLLOWING_MINUS)
        print(f"  -> {sorted(first_following.get(anchor, frozenset()))}")


if __name__ == "__main__":
    main()
