"""A tour of the paper's §6/§7 lower-bound machinery at executable scale.

Builds a tiny alternating Turing machine, runs the three hardness encodings
(Figures 3, 4, 5) on it, and checks the reductions' defining equivalence:
the encoding of the machine's computation satisfies the formula iff the
machine accepts.  Then runs the Theorem 30 star-free reduction end to end.

Run with:  python examples/hardness_tour.py
"""

from repro.analysis import check_containment
from repro.lowerbounds import (
    all_ones_machine,
    downward_reduction,
    encode_strategy_tree,
    encode_strategy_tree_downward,
    encode_strategy_tree_forward,
    forward_reduction,
    nonemptiness_as_containment,
    vertical_reduction,
)
from repro.regexes import SFComplement, SFConcat, SFSymbol, starfree_nonempty
from repro.semantics import holds_at
from repro.xpath import size
from repro.xpath.fragments import fragment_of


def machine_tour() -> None:
    machine = all_ones_machine()  # universal: accepts words with no '0'
    print("machine: universal check that the input contains no '0'")
    for word in ("11", "10"):
        accepts = machine.accepts(word, 2 ** len(word))
        print(f"\ninput {word!r}: machine accepts = {accepts}")
        for name, build, encode in (
            ("Fig. 3 / §6.2  CoreXPath↓↑(∩)", vertical_reduction,
             encode_strategy_tree),
            ("Fig. 4 / §6.3  CoreXPath↓→(∩)", forward_reduction,
             encode_strategy_tree_forward),
            ("Fig. 5 / §6.4  CoreXPath↓(∩)", downward_reduction,
             encode_strategy_tree_downward),
        ):
            reduction = build(machine, word)
            tree = encode(machine, word)
            holds = holds_at(tree, reduction.formula, 0)
            marker = "✓" if holds == accepts else "✗"
            print(f"  {marker} {name}: |φ| = {size(reduction.formula):5d}, "
                  f"|encoding| = {tree.size:3d} nodes, "
                  f"formula holds = {holds}")
            assert holds == accepts


def starfree_tour() -> None:
    print("\nTheorem 30: star-free nonemptiness as containment in F")
    a, b = SFSymbol("a"), SFSymbol("b")
    cases = {
        "a·b": SFConcat(a, b),
        "−(a·b)": SFComplement(SFConcat(a, b)),
        "∅ = −(a ∪ −a)": SFComplement(a | SFComplement(a)),
    }
    for name, expr in cases.items():
        alpha, beta = nonemptiness_as_containment(expr)
        verdict = check_containment(alpha, beta, max_nodes=4)
        nonempty = starfree_nonempty(expr, frozenset({"a", "b"}))
        print(f"  {name}: L(r) nonempty = {nonempty}; "
              f"tr(r) ⊑ ∅ = {verdict.contained}; "
              f"tr(r) lives in {fragment_of(alpha).name}")
        assert verdict.contained == (not nonempty)


def main() -> None:
    machine_tour()
    starfree_tour()


if __name__ == "__main__":
    main()
